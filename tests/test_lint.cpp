/**
 * @file
 * Self-tests for smoothe_lint: every rule must fire on a minimal
 * offending snippet, stay quiet on the idiomatic alternative, and honor
 * `// smoothe-lint: allow(<rule>)` suppressions. Lexer edge cases
 * (comments, raw strings) are covered through the rules: a violation
 * inside a comment or string must never fire.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "lint/baseline.hpp"
#include "lint/lexer.hpp"
#include "lint/linter.hpp"
#include "lint/project_model.hpp"
#include "lint/sarif.hpp"
#include "lint/scope_tree.hpp"
#include "util/json.hpp"

namespace lint = smoothe::lint;

namespace {

/** Names of the rules that fired, in report order. */
std::vector<std::string>
firedRules(const std::string& path, const std::string& source)
{
    std::vector<std::string> names;
    for (const lint::Finding& finding : lint::lintSource(path, source))
        names.push_back(finding.rule);
    return names;
}

bool
fires(const std::string& path, const std::string& source,
      const std::string& rule)
{
    const auto names = firedRules(path, source);
    return std::find(names.begin(), names.end(), rule) != names.end();
}

// Library .cpp under src/ — the strictest context short of a header.
const char* kLibCpp = "src/foo/bar.cpp";
// Non-library tool file: library-only rules must stay quiet.
const char* kToolCpp = "tools/bar.cpp";

// ------------------------------------------------------------ raw new/delete

TEST(LintRawNew, FiresOnRawNew)
{
    EXPECT_TRUE(fires(kLibCpp, "int* p = new int(3);\n", "raw-new"));
    EXPECT_TRUE(fires(kLibCpp, "delete p;\n", "raw-delete"));
}

TEST(LintRawNew, SkipsOperatorNewAndDeletedFunctions)
{
    EXPECT_FALSE(fires(kLibCpp, "void* operator new(std::size_t);\n",
                       "raw-new"));
    EXPECT_FALSE(
        fires(kLibCpp, "Widget(const Widget&) = delete;\n", "raw-delete"));
}

TEST(LintRawNew, SilentInCommentsAndStrings)
{
    EXPECT_FALSE(fires(kLibCpp, "// new delete rand() assert(x)\n",
                       "raw-new"));
    EXPECT_FALSE(fires(kLibCpp,
                       "const char* s = \"new delete assert(1)\";\n",
                       "raw-new"));
    EXPECT_FALSE(fires(kLibCpp,
                       "auto r = R\"(new int; delete p; rand())\";\n",
                       "raw-new"));
    EXPECT_FALSE(fires(kLibCpp, "/* int* p = new int; */\n", "raw-new"));
}

TEST(LintRawNew, SuppressionOnSameLineAndLineAbove)
{
    EXPECT_FALSE(fires(
        kLibCpp,
        "int* p = new int; // smoothe-lint: allow(raw-new)\n", "raw-new"));
    EXPECT_FALSE(fires(kLibCpp,
                       "// smoothe-lint: allow(raw-new)\nint* p = new int;\n",
                       "raw-new"));
    // The wrong rule name does not suppress.
    EXPECT_TRUE(fires(
        kLibCpp,
        "int* p = new int; // smoothe-lint: allow(no-rand)\n", "raw-new"));
}

// ----------------------------------------------------------------- std-thread

TEST(LintStdThread, FiresOutsideThreadPool)
{
    EXPECT_TRUE(
        fires(kLibCpp, "std::thread worker(run);\n", "std-thread"));
}

TEST(LintStdThread, AllowsTheThreadPoolItself)
{
    EXPECT_FALSE(fires("src/util/thread_pool.cpp",
                       "std::thread worker(run);\n", "std-thread"));
}

// -------------------------------------------------------------------- no-rand

TEST(LintNoRand, FiresOnRandSrandTimeInLibraryCode)
{
    EXPECT_TRUE(fires(kLibCpp, "int x = rand();\n", "no-rand"));
    EXPECT_TRUE(fires(kLibCpp, "srand(42);\n", "no-rand"));
    EXPECT_TRUE(fires(kLibCpp, "auto t = time(nullptr);\n", "no-rand"));
    EXPECT_TRUE(fires(kLibCpp, "auto t = std::time(nullptr);\n", "no-rand"));
}

TEST(LintNoRand, QuietOutsideTheLibrary)
{
    EXPECT_FALSE(fires(kToolCpp, "int x = rand();\n", "no-rand"));
}

TEST(LintNoRand, SkipsMemberCallsAndOtherQualifiers)
{
    EXPECT_FALSE(fires(kLibCpp, "double s = timer.time();\n", "no-rand"));
    EXPECT_FALSE(fires(kLibCpp, "double s = clock->time();\n", "no-rand"));
    EXPECT_FALSE(fires(kLibCpp, "auto t = mylib::time();\n", "no-rand"));
    // Identifier without a call is a name, not a call.
    EXPECT_FALSE(fires(kLibCpp, "int rand = 3;\n", "no-rand"));
}

// ------------------------------------------------------------------ no-assert

TEST(LintNoAssert, FiresOnAssertCallAndInclude)
{
    EXPECT_TRUE(fires(kLibCpp, "assert(x > 0);\n", "no-assert"));
    EXPECT_TRUE(fires(kLibCpp, "#include <cassert>\n", "no-assert"));
    EXPECT_TRUE(fires(kLibCpp, "#include <assert.h>\n", "no-assert"));
}

TEST(LintNoAssert, SkipsQualifiedAndMemberAssert)
{
    EXPECT_FALSE(fires(kLibCpp, "check.assert(x);\n", "no-assert"));
    EXPECT_FALSE(fires(kLibCpp, "mylib::assert(x);\n", "no-assert"));
}

// ------------------------------------------------------------ iostream-header

TEST(LintIostream, FiresOnlyInLibraryHeaders)
{
    EXPECT_TRUE(
        fires("src/util/table.hpp", "#include <iostream>\n",
              "iostream-header"));
    // Library .cpp files may include it.
    EXPECT_FALSE(
        fires(kLibCpp, "#include <iostream>\n", "iostream-header"));
    // Non-library headers may too.
    EXPECT_FALSE(fires("tests/helpers.hpp", "#include <iostream>\n",
                       "iostream-header"));
    EXPECT_FALSE(fires("src/util/table.hpp", "#include <iosfwd>\n",
                       "iostream-header"));
}

// -------------------------------------------------------------- include-guard

TEST(LintIncludeGuard, AcceptsGuardAndPragmaOnce)
{
    EXPECT_FALSE(fires("src/foo/a.hpp",
                       "#ifndef SMOOTHE_FOO_A_HPP\n"
                       "#define SMOOTHE_FOO_A_HPP\n"
                       "#endif\n",
                       "include-guard"));
    EXPECT_FALSE(
        fires("src/foo/a.hpp", "#pragma once\nint x;\n", "include-guard"));
}

TEST(LintIncludeGuard, FiresOnMissingOrMisnamedGuard)
{
    EXPECT_TRUE(fires("src/foo/a.hpp", "int x;\n", "include-guard"));
    EXPECT_TRUE(fires("src/foo/a.hpp",
                      "#ifndef FOO_A_HPP\n"
                      "#define FOO_A_HPP\n"
                      "#endif\n",
                      "include-guard"));
    // Outside the library any consistent guard name is fine.
    EXPECT_FALSE(fires("tests/helpers.hpp",
                       "#ifndef TEST_HELPERS_HPP\n"
                       "#define TEST_HELPERS_HPP\n"
                       "#endif\n",
                       "include-guard"));
    // Source files need no guard.
    EXPECT_FALSE(fires(kLibCpp, "int x;\n", "include-guard"));
}

// --------------------------------------------------------------- tape-in-loop

TEST(LintTapeInLoop, FiresOnConstructionInLoopBodies)
{
    EXPECT_TRUE(fires(kLibCpp,
                      "void f() {\n"
                      "  for (int i = 0; i < n; ++i) {\n"
                      "    Tape tape(backend, &arena);\n"
                      "  }\n"
                      "}\n",
                      "tape-in-loop"));
    EXPECT_TRUE(fires(kLibCpp,
                      "void f() {\n"
                      "  while (running) {\n"
                      "    auto loss = eval(Tape(backend));\n"
                      "  }\n"
                      "}\n",
                      "tape-in-loop"));
    EXPECT_TRUE(fires(kLibCpp,
                      "void f() {\n"
                      "  do {\n"
                      "    std::optional<Tape> tape;\n"
                      "  } while (more());\n"
                      "}\n",
                      "tape-in-loop"));
    // Nested: the loop is inside an if, the Tape inside the loop.
    EXPECT_TRUE(fires(kLibCpp,
                      "void f() {\n"
                      "  if (x) {\n"
                      "    for (;;) {\n"
                      "      Tape t;\n"
                      "    }\n"
                      "  }\n"
                      "}\n",
                      "tape-in-loop"));
}

TEST(LintTapeInLoop, QuietOutsideLoopsAndOnNonConstructingMentions)
{
    // Construction outside any loop: the compile-once pattern itself.
    EXPECT_FALSE(fires(kLibCpp,
                       "void f() {\n"
                       "  Tape recorder(backend, &arena);\n"
                       "  for (int i = 0; i < n; ++i) {\n"
                       "    program.forward();\n"
                       "  }\n"
                       "}\n",
                       "tape-in-loop"));
    // References, pointers, and qualified names don't allocate.
    EXPECT_FALSE(fires(kLibCpp,
                       "void f(Tape& tape) {\n"
                       "  for (int i = 0; i < n; ++i) {\n"
                       "    use(tape);\n"
                       "    Tape* alias = &tape;\n"
                       "    Tape::Options opts;\n"
                       "  }\n"
                       "}\n",
                       "tape-in-loop"));
    // A loop that merely follows a declaration does not contaminate it.
    EXPECT_FALSE(fires(kLibCpp,
                       "void f() {\n"
                       "  for (int i = 0; i < n; ++i) { work(); }\n"
                       "  Tape tape(backend);\n"
                       "}\n",
                       "tape-in-loop"));
    // Braces inside the loop header don't open a body early.
    EXPECT_FALSE(fires(kLibCpp,
                       "void f() {\n"
                       "  for (int x : std::vector<int>{1, 2}) { use(x); }\n"
                       "  Tape tape(backend);\n"
                       "}\n",
                       "tape-in-loop"));
    // Tool code is exempt; benches/tests measure the eager path.
    EXPECT_FALSE(fires(kToolCpp,
                       "void f() {\n"
                       "  for (;;) { Tape tape; }\n"
                       "}\n",
                       "tape-in-loop"));
}

TEST(LintTapeInLoop, SuppressionMarksTheIntentionalEagerPath)
{
    EXPECT_FALSE(fires(kLibCpp,
                       "void f() {\n"
                       "  for (;;) {\n"
                       "    // smoothe-lint: allow(tape-in-loop)\n"
                       "    Tape tape(backend, &arena);\n"
                       "  }\n"
                       "}\n",
                       "tape-in-loop"));
}

// ------------------------------------------------------------------ reporting

TEST(LintReporting, FindingsCarryPathLineAndSortByLine)
{
    const auto findings = lint::lintSource(
        kLibCpp, "int a;\nint* p = new int;\ndelete p;\n");
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(findings[0].rule, "raw-new");
    EXPECT_EQ(findings[0].path, kLibCpp);
    EXPECT_EQ(findings[0].line, 2);
    EXPECT_EQ(findings[1].rule, "raw-delete");
    EXPECT_EQ(findings[1].line, 3);
}

TEST(LintReporting, TextAndJsonRendering)
{
    lint::LintReport report;
    report.filesScanned = 1;
    report.findings = lint::lintSource(kLibCpp, "int* p = new int;\n");
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_FALSE(report.clean());

    const std::string text = lint::renderText(report);
    EXPECT_NE(text.find("src/foo/bar.cpp:1: [raw-new]"), std::string::npos)
        << text;
    EXPECT_NE(text.find("1 finding in 1 file"), std::string::npos) << text;

    const std::string json = lint::renderJson(report).dump();
    EXPECT_NE(json.find("\"raw-new\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"files_scanned\""), std::string::npos) << json;
}

TEST(LintReporting, RuleCatalogCoversEveryEmittedRule)
{
    std::vector<std::string> known;
    for (const lint::RuleInfo& info : lint::ruleCatalog())
        known.push_back(info.name);
    for (const char* rule :
         {"raw-new", "raw-delete", "std-thread", "no-rand", "no-assert",
          "iostream-header", "include-guard", "tape-in-loop",
          "stale-delta-state"}) {
        EXPECT_NE(std::find(known.begin(), known.end(), rule), known.end())
            << rule;
    }
}

// ---------------------------------------------------------------- lexer edges

TEST(LintLexer, TracksLinesAcrossBlockCommentsAndRawStrings)
{
    // The `new` on line 4 must be reported there, not where the comment
    // started.
    const std::string source = "/* line1\nline2 */\nint a;\nint* p = new "
                               "int;\n";
    const auto findings = lint::lintSource(kLibCpp, source);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 4);
}

TEST(LintLexer, RecordsSuppressionsPerRule)
{
    const lint::LexedFile lexed =
        lint::lex("// smoothe-lint: allow(raw-new, no-rand)\nint x;\n");
    EXPECT_TRUE(lexed.suppressed("raw-new", 1));
    EXPECT_TRUE(lexed.suppressed("no-rand", 2)); // line-above form
    EXPECT_FALSE(lexed.suppressed("no-assert", 1));
    EXPECT_FALSE(lexed.suppressed("raw-new", 3));
}

TEST(LintLexer, PrefixedRawStringsDoNotLeakTheirContents)
{
    // Every encoding prefix, including custom delimiters: the body must
    // lex as one literal, not as code.
    EXPECT_FALSE(fires(kLibCpp, "auto a = u8R\"(new int)\";\n", "raw-new"));
    EXPECT_FALSE(fires(kLibCpp, "auto b = LR\"(delete p)\";\n",
                       "raw-delete"));
    EXPECT_FALSE(fires(kLibCpp,
                       "auto c = uR\"sep(int* p = new int;)sep\";\n",
                       "raw-new"));
    // A ")" inside the body does not close a delimited raw string.
    EXPECT_FALSE(fires(kLibCpp,
                       "auto d = R\"x(close ) now: new int)x\";\n",
                       "raw-new"));
    // Lexing resumes correctly after the literal.
    const auto findings = lint::lintSource(
        kLibCpp, "auto a = u8R\"(line1\nline2)\";\nint* p = new int;\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 3);
}

TEST(LintLexer, DigitSeparatorsAreNotCharLiterals)
{
    // 1'000'000 must lex as one number — a naive lexer treats the first
    // apostrophe as a char literal and swallows the rest of the line.
    EXPECT_TRUE(fires(kLibCpp, "int n = 1'000'000; int* p = new int;\n",
                      "raw-new"));
    const lint::LexedFile lexed = lint::lex("auto n = 0xFF'00 + 1'2e3;\n");
    std::vector<std::string> numbers;
    for (const lint::Token& tok : lexed.tokens) {
        if (tok.kind == lint::TokenKind::Number)
            numbers.push_back(tok.text);
    }
    ASSERT_EQ(numbers.size(), 2u);
    EXPECT_EQ(numbers[0], "0xFF'00");
    EXPECT_EQ(numbers[1], "1'2e3");
    // A real char literal right after a number still lexes as one.
    EXPECT_FALSE(fires(kLibCpp, "char c = 'n'; use(c, 2 'x');\n",
                       "raw-new"));
}

TEST(LintLexer, CommentSlashesInsideStringsDoNotOpenComments)
{
    // "http://..." must not comment out the rest of the line.
    EXPECT_TRUE(fires(kLibCpp,
                      "const char* u = \"http://x.com\"; int* p = new int;\n",
                      "raw-new"));
    EXPECT_TRUE(fires(kLibCpp,
                      "const char* s = \"/* not a comment\"; "
                      "int* p = new int;\n",
                      "raw-new"));
}

TEST(LintLexer, BackslashNewlineInStringsKeepsLineNumbers)
{
    const auto findings = lint::lintSource(
        kLibCpp, "const char* s = \"a\\\nb\";\nint* p = new int;\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 3);
}

TEST(LintLexer, BlockCommentSuppressionAppliesAtItsEndLine)
{
    EXPECT_FALSE(fires(kLibCpp,
                       "/* smoothe-lint:\n   allow(raw-new) */ "
                       "int* p = new int;\n",
                       "raw-new"));
}

TEST(LintLexer, LiteralTokensCarryInnerTextOnly)
{
    const lint::LexedFile lexed =
        lint::lex("auto s = \"hi\"; auto c = 'x'; auto r = R\"(raw)\";\n");
    std::vector<std::string> literals;
    for (const lint::Token& tok : lexed.tokens) {
        if (tok.kind == lint::TokenKind::StringLiteral ||
            tok.kind == lint::TokenKind::CharLiteral)
            literals.push_back(tok.text);
    }
    ASSERT_EQ(literals.size(), 3u);
    EXPECT_EQ(literals[0], "hi");
    EXPECT_EQ(literals[1], "x");
    EXPECT_EQ(literals[2], "raw");
}

// ------------------------------------------------- parallel-capture-race

// All parallel-rule snippets use the thread-pool entry-point names the
// rule recognizes (parallelFor / parallelChunks / ...).

TEST(LintParallelCapture, FiresOnPlainAssignToByRefCapture)
{
    EXPECT_TRUE(fires(kLibCpp,
                      "void f() {\n"
                      "  int winner = 0;\n"
                      "  pool.parallelFor(0, n, [&](std::size_t i) {\n"
                      "    winner = static_cast<int>(i);\n"
                      "  });\n"
                      "}\n",
                      "parallel-capture-race"));
}

TEST(LintParallelCapture, FiresOnIncrementAndIntAccumulate)
{
    EXPECT_TRUE(fires(kLibCpp,
                      "void f() {\n"
                      "  int hits = 0;\n"
                      "  pool.parallelFor(0, n, [&](std::size_t i) {\n"
                      "    if (keep(i)) ++hits;\n"
                      "  });\n"
                      "}\n",
                      "parallel-capture-race"));
    // Integer += is still a race (not a nondet-reduction: int addition
    // is associative, the write itself is the bug).
    EXPECT_TRUE(fires(kLibCpp,
                      "void f() {\n"
                      "  int total = 0;\n"
                      "  pool.parallelChunks(n, [&](std::size_t c) {\n"
                      "    total += 1;\n"
                      "  });\n"
                      "}\n",
                      "parallel-capture-race"));
}

TEST(LintParallelCapture, ExplicitByRefCaptureAlsoFires)
{
    EXPECT_TRUE(fires(kLibCpp,
                      "void f() {\n"
                      "  int winner = 0;\n"
                      "  pool.parallelFor(0, n, [&winner](std::size_t i) {\n"
                      "    winner = static_cast<int>(i);\n"
                      "  });\n"
                      "}\n",
                      "parallel-capture-race"));
}

TEST(LintParallelCapture, QuietOnTheSanctionedPatterns)
{
    // Subscripted writes are the disjoint-chunk idiom.
    EXPECT_FALSE(fires(kLibCpp,
                       "void f(float* out) {\n"
                       "  pool.parallelFor(0, n, [&](std::size_t i) {\n"
                       "    out[i] = weight(i);\n"
                       "  });\n"
                       "}\n",
                       "parallel-capture-race"));
    // Atomics synchronize themselves.
    EXPECT_FALSE(fires(kLibCpp,
                       "void f() {\n"
                       "  std::atomic<int> hits{0};\n"
                       "  pool.parallelFor(0, n, [&](std::size_t i) {\n"
                       "    ++hits;\n"
                       "  });\n"
                       "}\n",
                       "parallel-capture-race"));
    // A lock guard in the lambda body synchronizes its writes.
    EXPECT_FALSE(fires(kLibCpp,
                       "void f() {\n"
                       "  int winner = 0;\n"
                       "  pool.parallelFor(0, n, [&](std::size_t i) {\n"
                       "    std::lock_guard<std::mutex> lock(mu);\n"
                       "    winner = static_cast<int>(i);\n"
                       "  });\n"
                       "}\n",
                       "parallel-capture-race"));
    // A name redeclared inside the lambda is per-invocation state.
    EXPECT_FALSE(fires(kLibCpp,
                       "void f() {\n"
                       "  int acc = 0;\n"
                       "  pool.parallelFor(0, n, [&](std::size_t i) {\n"
                       "    int acc = 0;\n"
                       "    acc = static_cast<int>(i);\n"
                       "  });\n"
                       "}\n",
                       "parallel-capture-race"));
    // Copy captures mutate the lambda's own copy.
    EXPECT_FALSE(fires(kLibCpp,
                       "void f() {\n"
                       "  int seed = 7;\n"
                       "  pool.parallelFor(0, n, [=](std::size_t i) mutable "
                       "{\n"
                       "    seed = static_cast<int>(i);\n"
                       "  });\n"
                       "}\n",
                       "parallel-capture-race"));
    // Init captures own their storage.
    EXPECT_FALSE(fires(kLibCpp,
                       "void f() {\n"
                       "  int seed = 7;\n"
                       "  pool.parallelFor(0, n, "
                       "[s = seed](std::size_t i) mutable {\n"
                       "    s = static_cast<int>(i);\n"
                       "  });\n"
                       "}\n",
                       "parallel-capture-race"));
}

TEST(LintParallelCapture, QuietOutsideParallelCallsAndLibrary)
{
    // The same write in a lambda that never reaches the pool is fine.
    EXPECT_FALSE(fires(kLibCpp,
                       "void f() {\n"
                       "  int winner = 0;\n"
                       "  auto g = [&](std::size_t i) { winner = 1; };\n"
                       "  g(0);\n"
                       "}\n",
                       "parallel-capture-race"));
    EXPECT_FALSE(fires(kToolCpp,
                       "void f() {\n"
                       "  int winner = 0;\n"
                       "  pool.parallelFor(0, n, [&](std::size_t i) {\n"
                       "    winner = static_cast<int>(i);\n"
                       "  });\n"
                       "}\n",
                       "parallel-capture-race"));
}

TEST(LintParallelCapture, SuppressionWorks)
{
    EXPECT_FALSE(fires(kLibCpp,
                       "void f() {\n"
                       "  int winner = 0;\n"
                       "  pool.parallelFor(0, n, [&](std::size_t i) {\n"
                       "    // smoothe-lint: allow(parallel-capture-race)\n"
                       "    winner = static_cast<int>(i);\n"
                       "  });\n"
                       "}\n",
                       "parallel-capture-race"));
}

// ----------------------------------------------------- nondet-reduction

TEST(LintNondetReduction, FloatAccumulationIsNondeterministic)
{
    const char* source = "void f() {\n"
                         "  double sum = 0.0;\n"
                         "  pool.parallelFor(0, n, [&](std::size_t i) {\n"
                         "    sum += weight(i);\n"
                         "  });\n"
                         "}\n";
    EXPECT_TRUE(fires(kLibCpp, source, "nondet-reduction"));
    // It is reported as a reduction problem, not a generic race.
    EXPECT_FALSE(fires(kLibCpp, source, "parallel-capture-race"));
    EXPECT_TRUE(fires(kLibCpp,
                      "void f() {\n"
                      "  float prod = 1.0f;\n"
                      "  pool.parallelChunks(n, [&](std::size_t c) {\n"
                      "    prod *= scale(c);\n"
                      "  });\n"
                      "}\n",
                      "nondet-reduction"));
}

TEST(LintNondetReduction, QuietOnPerChunkBuffers)
{
    EXPECT_FALSE(fires(kLibCpp,
                       "void f(std::vector<double>& perChunk) {\n"
                       "  pool.parallelChunks(n, [&](std::size_t c) {\n"
                       "    perChunk[c] += weight(c);\n"
                       "  });\n"
                       "}\n",
                       "nondet-reduction"));
}

// ------------------------------------------------------- fma-in-kernel

// Kernel-layer file: the FMA ban applies here and only here.
const char* kTensorCpp = "src/tensor/kernels_avx2.cpp";

TEST(LintFmaInKernel, FiresOnIntrinsicsStdFmaAndPragmas)
{
    EXPECT_TRUE(fires(kTensorCpp, "acc = _mm256_fmadd_ps(a, b, acc);\n",
                      "fma-in-kernel"));
    EXPECT_TRUE(fires(kTensorCpp, "acc = _mm_fmsub_pd(a, b, acc);\n",
                      "fma-in-kernel"));
    EXPECT_TRUE(fires(kTensorCpp, "double r = std::fma(a, b, c);\n",
                      "fma-in-kernel"));
    EXPECT_TRUE(fires(kTensorCpp, "float r = fmaf(a, b, c);\n",
                      "fma-in-kernel"));
    EXPECT_TRUE(fires(kTensorCpp, "#pragma STDC FP_CONTRACT ON\n",
                      "fma-in-kernel"));
    EXPECT_TRUE(fires(kTensorCpp,
                      "setFlags(\"-ffast-math -O3\");\n",
                      "fma-in-kernel"));
}

TEST(LintFmaInKernel, QuietOnSeparateMulAddAndOutsideKernels)
{
    EXPECT_FALSE(fires(kTensorCpp,
                       "acc = _mm256_add_ps(acc, _mm256_mul_ps(a, b));\n",
                       "fma-in-kernel"));
    // `fma` as a name, not a call.
    EXPECT_FALSE(fires(kTensorCpp, "int fma = 3;\n", "fma-in-kernel"));
    // Member calls are someone else's fma.
    EXPECT_FALSE(fires(kTensorCpp, "x = obj.fma(a, b);\n", "fma-in-kernel"));
    // Outside src/tensor the contract does not apply.
    EXPECT_FALSE(fires("src/autodiff/matexp.cpp",
                       "double r = std::fma(a, b, c);\n", "fma-in-kernel"));
}

// --------------------------------------------- relaxed-atomic-handshake

TEST(LintRelaxedAtomic, FiresOutsideTheAllowlist)
{
    EXPECT_TRUE(fires(kLibCpp,
                      "flag.store(true, std::memory_order_relaxed);\n",
                      "relaxed-atomic-handshake"));
}

TEST(LintRelaxedAtomic, AllowlistedFilesAndSuppressionsAreQuiet)
{
    const char* source = "counter.fetch_add(1, std::memory_order_relaxed);\n";
    EXPECT_FALSE(fires("src/obs/report.cpp", source,
                       "relaxed-atomic-handshake"));
    EXPECT_FALSE(fires("src/tensor/simd.cpp", source,
                       "relaxed-atomic-handshake"));
    EXPECT_FALSE(fires("src/tensor/tensor.hpp", source,
                       "relaxed-atomic-handshake"));
    // Non-library code may do as it pleases.
    EXPECT_FALSE(fires(kToolCpp, source, "relaxed-atomic-handshake"));
    EXPECT_FALSE(
        fires(kLibCpp,
              "// self-contained flag. smoothe-lint: "
              "allow(relaxed-atomic-handshake)\n"
              "mode.store(m, std::memory_order_relaxed);\n",
              "relaxed-atomic-handshake"));
}

// ----------------------------------------------- avx2-parity-coverage

/** An in-memory multi-file project for the cross-file rules. */
struct SyntheticProject
{
    struct File
    {
        std::string path;
        lint::LexedFile lexed;
        lint::ScopeTree scopes;
    };
    std::vector<File> files;
    lint::ProjectModel model;

    void
    add(const std::string& path, const std::string& source)
    {
        File file;
        file.path = path;
        file.lexed = lint::lex(source);
        file.scopes = lint::buildScopeTree(file.lexed);
        model.addFile(path, file.lexed, file.scopes);
        files.push_back(std::move(file));
    }

    std::vector<std::string>
    run(const std::string& path) const
    {
        for (const File& file : files) {
            if (file.path != path)
                continue;
            lint::FileContext ctx;
            ctx.path = path;
            ctx.isHeader = path.size() > 4 &&
                           path.compare(path.size() - 4, 4, ".hpp") == 0;
            ctx.isLibrary = path.rfind("src/", 0) == 0;
            std::vector<std::string> names;
            for (const lint::Finding& finding : lint::runRules(
                     lint::RuleInputs{ctx, file.lexed, file.scopes,
                                      &model})) {
                if (finding.rule == "avx2-parity-coverage")
                    names.push_back(finding.message);
            }
            return names;
        }
        return {};
    }
};

const char* kSynthKernels = "src/tensor/kernels_avx2.cpp";
const char* kSynthKernelSource =
    "namespace smoothe::tensor::avx2 {\n"
    "void addRows(const float* a, float* out) { body(a, out); }\n"
    "void mulRows(const float* a, float* out) { body(a, out); }\n"
    "namespace {\n"
    "void internalHelper(float* out) { body(out); }\n"
    "} // namespace\n"
    "} // namespace smoothe::tensor::avx2\n";
// Dispatchers: `add` calls the kernel directly; `mul` reaches it through
// an intermediate helper, so coverage must walk the call chain.
const char* kSynthDispatch = "src/tensor/kernels.cpp";
const char* kSynthDispatchSource =
    "namespace smoothe::tensor {\n"
    "void add(const float* a, float* out) { avx2::addRows(a, out); }\n"
    "void mulImpl(const float* a, float* out) { avx2::mulRows(a, out); }\n"
    "void mul(const float* a, float* out) { mulImpl(a, out); }\n"
    "} // namespace smoothe::tensor\n";
const char* kSynthTest = "tests/test_simd.cpp";

TEST(LintAvx2Parity, CleanWhenEveryKernelIsReachableFromTheTest)
{
    SyntheticProject project;
    project.add(kSynthKernels, kSynthKernelSource);
    project.add(kSynthDispatch, kSynthDispatchSource);
    project.add(kSynthTest,
                "void parity() { add(a, out); mul(a, out); }\n");
    EXPECT_TRUE(project.run(kSynthKernels).empty());
}

TEST(LintAvx2Parity, DroppingATestReferenceBreaksCoverage)
{
    // Same project, but the test no longer drives `mul` — the kernel it
    // reaches through two hops must be reported as uncovered.
    SyntheticProject project;
    project.add(kSynthKernels, kSynthKernelSource);
    project.add(kSynthDispatch, kSynthDispatchSource);
    project.add(kSynthTest, "void parity() { add(a, out); }\n");
    const auto messages = project.run(kSynthKernels);
    ASSERT_EQ(messages.size(), 1u);
    EXPECT_NE(messages[0].find("mulRows"), std::string::npos)
        << messages[0];
}

TEST(LintAvx2Parity, DirectKernelReferenceInTheTestCounts)
{
    SyntheticProject project;
    project.add(kSynthKernels, kSynthKernelSource);
    project.add(kSynthTest,
                "void parity() { avx2::addRows(a, out); "
                "avx2::mulRows(a, out); }\n");
    EXPECT_TRUE(project.run(kSynthKernels).empty());
}

TEST(LintAvx2Parity, InternalHelpersAreExempt)
{
    SyntheticProject project;
    project.add(kSynthKernels, kSynthKernelSource);
    project.add(kSynthDispatch, kSynthDispatchSource);
    project.add(kSynthTest, "void parity() {}\n");
    for (const std::string& message : project.run(kSynthKernels))
        EXPECT_EQ(message.find("internalHelper"), std::string::npos)
            << message;
}

TEST(LintAvx2Parity, SilentWithoutAModelOrWithoutTheTestFile)
{
    // Single-file runs have no project model: the rule must not guess.
    EXPECT_FALSE(
        fires(kSynthKernels, kSynthKernelSource, "avx2-parity-coverage"));
    // A scoped run that excludes tests/ must not flag every kernel.
    SyntheticProject project;
    project.add(kSynthKernels, kSynthKernelSource);
    project.add(kSynthDispatch, kSynthDispatchSource);
    EXPECT_TRUE(project.run(kSynthKernels).empty());
}

// --------------------------------------------------------------- SARIF

lint::LintReport
sampleReport()
{
    lint::LintReport report;
    report.filesScanned = 2;
    report.findings = lint::lintSource(
        kLibCpp, "int* p = new int;\nint x = rand();\n");
    return report;
}

TEST(LintSarif, RenderedReportValidates)
{
    const lint::LintReport report = sampleReport();
    ASSERT_EQ(report.findings.size(), 2u);
    const smoothe::util::Json doc = lint::renderSarif(report);
    std::string error;
    EXPECT_TRUE(lint::validateSarif(doc, &error)) << error;

    const std::string text = doc.dump();
    EXPECT_NE(text.find("\"2.1.0\""), std::string::npos);
    EXPECT_NE(text.find("\"smoothe_lint\""), std::string::npos);
    EXPECT_NE(text.find("\"raw-new\""), std::string::npos);
    EXPECT_NE(text.find("src/foo/bar.cpp"), std::string::npos);
}

TEST(LintSarif, EmptyReportStillValidates)
{
    lint::LintReport report;
    report.filesScanned = 1;
    std::string error;
    EXPECT_TRUE(lint::validateSarif(lint::renderSarif(report), &error))
        << error;
}

TEST(LintSarif, ValidatorRejectsStructurallyBrokenDocuments)
{
    namespace util = smoothe::util;
    std::string error;
    // Not even an object.
    EXPECT_FALSE(lint::validateSarif(util::Json::makeArray(), &error));

    // Missing version.
    util::Json doc = util::Json::makeObject();
    doc.set("runs", util::Json::makeArray());
    EXPECT_FALSE(lint::validateSarif(doc, &error));
    EXPECT_FALSE(error.empty());

    // A result without a message.
    util::Json result = util::Json::makeObject();
    result.set("ruleId", "raw-new");
    util::Json results = util::Json::makeArray();
    results.push(std::move(result));
    util::Json driver = util::Json::makeObject();
    driver.set("name", "smoothe_lint");
    util::Json tool = util::Json::makeObject();
    tool.set("driver", std::move(driver));
    util::Json run = util::Json::makeObject();
    run.set("tool", std::move(tool));
    run.set("results", std::move(results));
    util::Json runs = util::Json::makeArray();
    runs.push(std::move(run));
    util::Json bad = util::Json::makeObject();
    bad.set("version", "2.1.0");
    bad.set("runs", std::move(runs));
    EXPECT_FALSE(lint::validateSarif(bad, &error));
}

// ------------------------------------------------------------ baseline

TEST(LintBaseline, RoundTripsThroughJson)
{
    const lint::LintReport report = sampleReport();
    const smoothe::util::Json doc = lint::renderBaseline(report.findings);
    lint::Baseline baseline;
    std::string error;
    ASSERT_TRUE(lint::parseBaseline(doc, baseline, &error)) << error;
    ASSERT_EQ(baseline.entries.size(), 2u);
    EXPECT_EQ(baseline.entries[0].rule, "raw-new");
    EXPECT_EQ(baseline.entries[0].path, kLibCpp);

    // A baseline written from the current findings absorbs all of them.
    EXPECT_TRUE(
        lint::applyBaseline(baseline, sampleReport().findings).empty());
}

TEST(LintBaseline, SurvivesLineDriftButCountsMultiplicity)
{
    lint::Baseline baseline;
    baseline.entries.push_back({"raw-new", "src/a.cpp", "msg"});

    // Same finding at a different line: still absorbed (keyed without
    // line numbers)...
    std::vector<lint::Finding> drifted = {{"raw-new", "src/a.cpp", 99,
                                           "msg"}};
    EXPECT_TRUE(lint::applyBaseline(baseline, drifted).empty());

    // ...but a second identical violation exceeds the budget.
    std::vector<lint::Finding> doubled = {
        {"raw-new", "src/a.cpp", 3, "msg"},
        {"raw-new", "src/a.cpp", 99, "msg"}};
    const auto survivors = lint::applyBaseline(baseline, doubled);
    ASSERT_EQ(survivors.size(), 1u);
    EXPECT_EQ(survivors[0].line, 99); // first occurrence absorbed

    // Different rule or path never matches.
    std::vector<lint::Finding> other = {{"no-rand", "src/a.cpp", 3, "msg"}};
    EXPECT_EQ(lint::applyBaseline(baseline, other).size(), 1u);
}

TEST(LintBaseline, MalformedDocumentsAreErrorsNotNoOps)
{
    namespace util = smoothe::util;
    lint::Baseline baseline;
    std::string error;

    EXPECT_FALSE(
        lint::parseBaseline(util::Json::makeArray(), baseline, &error));
    EXPECT_FALSE(error.empty());

    util::Json noList = util::Json::makeObject();
    noList.set("version", 1);
    EXPECT_FALSE(lint::parseBaseline(noList, baseline, &error));

    util::Json badEntry = util::Json::makeObject();
    badEntry.set("rule", 7); // wrong type
    util::Json list = util::Json::makeArray();
    list.push(std::move(badEntry));
    util::Json doc = util::Json::makeObject();
    doc.set("version", 1);
    doc.set("suppressions", std::move(list));
    EXPECT_FALSE(lint::parseBaseline(doc, baseline, &error));
}

// ------------------------------------------------------------- catalog

TEST(LintCatalog, CoversTheV2RulePack)
{
    const auto& catalog = lint::ruleCatalog();
    EXPECT_GE(catalog.size(), 11u);
    for (const lint::RuleInfo& info : catalog) {
        EXPECT_NE(info.summary[0], '\0') << info.name;
        EXPECT_NE(info.rationale[0], '\0') << info.name;
        EXPECT_NE(info.fix[0], '\0') << info.name;
    }
    for (const char* rule :
         {"parallel-capture-race", "nondet-reduction", "fma-in-kernel",
          "relaxed-atomic-handshake", "avx2-parity-coverage"}) {
        EXPECT_NE(lint::findRule(rule), nullptr) << rule;
    }
    EXPECT_EQ(lint::findRule("no-such-rule"), nullptr);
}

// ------------------------------------------------------- stale delta state

TEST(LintStaleDeltaState, FiresOnStateReuseAcrossGraphs)
{
    const char* source =
        "void f(Extractor& e, IncrementalState& state) {\n"
        "    auto a = e.extractIncremental(graphA, deltaA, state, opts);\n"
        "    auto b = e.extractIncremental(graphB, deltaB, state, opts);\n"
        "}\n";
    EXPECT_TRUE(fires(kLibCpp, source, "stale-delta-state"));
    // Call sites live in tools and benches too — not library-only.
    EXPECT_TRUE(fires(kToolCpp, source, "stale-delta-state"));
}

TEST(LintStaleDeltaState, QuietWithResetOrSameGraph)
{
    EXPECT_FALSE(fires(
        kLibCpp,
        "void f() {\n"
        "    e.extractIncremental(graphA, d1, state, opts);\n"
        "    state.reset();\n"
        "    e.extractIncremental(graphB, d2, state, opts);\n"
        "}\n",
        "stale-delta-state"));
    // The same evolving graph expression across epochs is the intended
    // protocol: one state, one lineage.
    EXPECT_FALSE(fires(
        kLibCpp,
        "void f() {\n"
        "    for (int i = 0; i < n; ++i)\n"
        "        e.extractIncremental(epochGraph, delta, state, opts);\n"
        "}\n",
        "stale-delta-state"));
    // Distinct states per graph are fine.
    EXPECT_FALSE(fires(
        kLibCpp,
        "void f() {\n"
        "    e.extractIncremental(graphA, d1, stateA, opts);\n"
        "    e.extractIncremental(graphB, d2, stateB, opts);\n"
        "}\n",
        "stale-delta-state"));
    // Same spelling in different functions is unrelated state.
    EXPECT_FALSE(fires(
        kLibCpp,
        "void f() { e.extractIncremental(graphA, d, state, o); }\n"
        "void g() { e.extractIncremental(graphB, d, state, o); }\n",
        "stale-delta-state"));
}

TEST(LintStaleDeltaState, SuppressionSilencesTheFinding)
{
    EXPECT_FALSE(fires(
        kLibCpp,
        "void f() {\n"
        "    e.extractIncremental(graphA, d1, state, opts);\n"
        "    // smoothe-lint: allow(stale-delta-state)\n"
        "    e.extractIncremental(graphB, d2, state, opts);\n"
        "}\n",
        "stale-delta-state"));
}

} // namespace
