/**
 * @file
 * Self-tests for smoothe_lint: every rule must fire on a minimal
 * offending snippet, stay quiet on the idiomatic alternative, and honor
 * `// smoothe-lint: allow(<rule>)` suppressions. Lexer edge cases
 * (comments, raw strings) are covered through the rules: a violation
 * inside a comment or string must never fire.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "lint/lexer.hpp"
#include "lint/linter.hpp"

namespace lint = smoothe::lint;

namespace {

/** Names of the rules that fired, in report order. */
std::vector<std::string>
firedRules(const std::string& path, const std::string& source)
{
    std::vector<std::string> names;
    for (const lint::Finding& finding : lint::lintSource(path, source))
        names.push_back(finding.rule);
    return names;
}

bool
fires(const std::string& path, const std::string& source,
      const std::string& rule)
{
    const auto names = firedRules(path, source);
    return std::find(names.begin(), names.end(), rule) != names.end();
}

// Library .cpp under src/ — the strictest context short of a header.
const char* kLibCpp = "src/foo/bar.cpp";
// Non-library tool file: library-only rules must stay quiet.
const char* kToolCpp = "tools/bar.cpp";

// ------------------------------------------------------------ raw new/delete

TEST(LintRawNew, FiresOnRawNew)
{
    EXPECT_TRUE(fires(kLibCpp, "int* p = new int(3);\n", "raw-new"));
    EXPECT_TRUE(fires(kLibCpp, "delete p;\n", "raw-delete"));
}

TEST(LintRawNew, SkipsOperatorNewAndDeletedFunctions)
{
    EXPECT_FALSE(fires(kLibCpp, "void* operator new(std::size_t);\n",
                       "raw-new"));
    EXPECT_FALSE(
        fires(kLibCpp, "Widget(const Widget&) = delete;\n", "raw-delete"));
}

TEST(LintRawNew, SilentInCommentsAndStrings)
{
    EXPECT_FALSE(fires(kLibCpp, "// new delete rand() assert(x)\n",
                       "raw-new"));
    EXPECT_FALSE(fires(kLibCpp,
                       "const char* s = \"new delete assert(1)\";\n",
                       "raw-new"));
    EXPECT_FALSE(fires(kLibCpp,
                       "auto r = R\"(new int; delete p; rand())\";\n",
                       "raw-new"));
    EXPECT_FALSE(fires(kLibCpp, "/* int* p = new int; */\n", "raw-new"));
}

TEST(LintRawNew, SuppressionOnSameLineAndLineAbove)
{
    EXPECT_FALSE(fires(
        kLibCpp,
        "int* p = new int; // smoothe-lint: allow(raw-new)\n", "raw-new"));
    EXPECT_FALSE(fires(kLibCpp,
                       "// smoothe-lint: allow(raw-new)\nint* p = new int;\n",
                       "raw-new"));
    // The wrong rule name does not suppress.
    EXPECT_TRUE(fires(
        kLibCpp,
        "int* p = new int; // smoothe-lint: allow(no-rand)\n", "raw-new"));
}

// ----------------------------------------------------------------- std-thread

TEST(LintStdThread, FiresOutsideThreadPool)
{
    EXPECT_TRUE(
        fires(kLibCpp, "std::thread worker(run);\n", "std-thread"));
}

TEST(LintStdThread, AllowsTheThreadPoolItself)
{
    EXPECT_FALSE(fires("src/util/thread_pool.cpp",
                       "std::thread worker(run);\n", "std-thread"));
}

// -------------------------------------------------------------------- no-rand

TEST(LintNoRand, FiresOnRandSrandTimeInLibraryCode)
{
    EXPECT_TRUE(fires(kLibCpp, "int x = rand();\n", "no-rand"));
    EXPECT_TRUE(fires(kLibCpp, "srand(42);\n", "no-rand"));
    EXPECT_TRUE(fires(kLibCpp, "auto t = time(nullptr);\n", "no-rand"));
    EXPECT_TRUE(fires(kLibCpp, "auto t = std::time(nullptr);\n", "no-rand"));
}

TEST(LintNoRand, QuietOutsideTheLibrary)
{
    EXPECT_FALSE(fires(kToolCpp, "int x = rand();\n", "no-rand"));
}

TEST(LintNoRand, SkipsMemberCallsAndOtherQualifiers)
{
    EXPECT_FALSE(fires(kLibCpp, "double s = timer.time();\n", "no-rand"));
    EXPECT_FALSE(fires(kLibCpp, "double s = clock->time();\n", "no-rand"));
    EXPECT_FALSE(fires(kLibCpp, "auto t = mylib::time();\n", "no-rand"));
    // Identifier without a call is a name, not a call.
    EXPECT_FALSE(fires(kLibCpp, "int rand = 3;\n", "no-rand"));
}

// ------------------------------------------------------------------ no-assert

TEST(LintNoAssert, FiresOnAssertCallAndInclude)
{
    EXPECT_TRUE(fires(kLibCpp, "assert(x > 0);\n", "no-assert"));
    EXPECT_TRUE(fires(kLibCpp, "#include <cassert>\n", "no-assert"));
    EXPECT_TRUE(fires(kLibCpp, "#include <assert.h>\n", "no-assert"));
}

TEST(LintNoAssert, SkipsQualifiedAndMemberAssert)
{
    EXPECT_FALSE(fires(kLibCpp, "check.assert(x);\n", "no-assert"));
    EXPECT_FALSE(fires(kLibCpp, "mylib::assert(x);\n", "no-assert"));
}

// ------------------------------------------------------------ iostream-header

TEST(LintIostream, FiresOnlyInLibraryHeaders)
{
    EXPECT_TRUE(
        fires("src/util/table.hpp", "#include <iostream>\n",
              "iostream-header"));
    // Library .cpp files may include it.
    EXPECT_FALSE(
        fires(kLibCpp, "#include <iostream>\n", "iostream-header"));
    // Non-library headers may too.
    EXPECT_FALSE(fires("tests/helpers.hpp", "#include <iostream>\n",
                       "iostream-header"));
    EXPECT_FALSE(fires("src/util/table.hpp", "#include <iosfwd>\n",
                       "iostream-header"));
}

// -------------------------------------------------------------- include-guard

TEST(LintIncludeGuard, AcceptsGuardAndPragmaOnce)
{
    EXPECT_FALSE(fires("src/foo/a.hpp",
                       "#ifndef SMOOTHE_FOO_A_HPP\n"
                       "#define SMOOTHE_FOO_A_HPP\n"
                       "#endif\n",
                       "include-guard"));
    EXPECT_FALSE(
        fires("src/foo/a.hpp", "#pragma once\nint x;\n", "include-guard"));
}

TEST(LintIncludeGuard, FiresOnMissingOrMisnamedGuard)
{
    EXPECT_TRUE(fires("src/foo/a.hpp", "int x;\n", "include-guard"));
    EXPECT_TRUE(fires("src/foo/a.hpp",
                      "#ifndef FOO_A_HPP\n"
                      "#define FOO_A_HPP\n"
                      "#endif\n",
                      "include-guard"));
    // Outside the library any consistent guard name is fine.
    EXPECT_FALSE(fires("tests/helpers.hpp",
                       "#ifndef TEST_HELPERS_HPP\n"
                       "#define TEST_HELPERS_HPP\n"
                       "#endif\n",
                       "include-guard"));
    // Source files need no guard.
    EXPECT_FALSE(fires(kLibCpp, "int x;\n", "include-guard"));
}

// --------------------------------------------------------------- tape-in-loop

TEST(LintTapeInLoop, FiresOnConstructionInLoopBodies)
{
    EXPECT_TRUE(fires(kLibCpp,
                      "void f() {\n"
                      "  for (int i = 0; i < n; ++i) {\n"
                      "    Tape tape(backend, &arena);\n"
                      "  }\n"
                      "}\n",
                      "tape-in-loop"));
    EXPECT_TRUE(fires(kLibCpp,
                      "void f() {\n"
                      "  while (running) {\n"
                      "    auto loss = eval(Tape(backend));\n"
                      "  }\n"
                      "}\n",
                      "tape-in-loop"));
    EXPECT_TRUE(fires(kLibCpp,
                      "void f() {\n"
                      "  do {\n"
                      "    std::optional<Tape> tape;\n"
                      "  } while (more());\n"
                      "}\n",
                      "tape-in-loop"));
    // Nested: the loop is inside an if, the Tape inside the loop.
    EXPECT_TRUE(fires(kLibCpp,
                      "void f() {\n"
                      "  if (x) {\n"
                      "    for (;;) {\n"
                      "      Tape t;\n"
                      "    }\n"
                      "  }\n"
                      "}\n",
                      "tape-in-loop"));
}

TEST(LintTapeInLoop, QuietOutsideLoopsAndOnNonConstructingMentions)
{
    // Construction outside any loop: the compile-once pattern itself.
    EXPECT_FALSE(fires(kLibCpp,
                       "void f() {\n"
                       "  Tape recorder(backend, &arena);\n"
                       "  for (int i = 0; i < n; ++i) {\n"
                       "    program.forward();\n"
                       "  }\n"
                       "}\n",
                       "tape-in-loop"));
    // References, pointers, and qualified names don't allocate.
    EXPECT_FALSE(fires(kLibCpp,
                       "void f(Tape& tape) {\n"
                       "  for (int i = 0; i < n; ++i) {\n"
                       "    use(tape);\n"
                       "    Tape* alias = &tape;\n"
                       "    Tape::Options opts;\n"
                       "  }\n"
                       "}\n",
                       "tape-in-loop"));
    // A loop that merely follows a declaration does not contaminate it.
    EXPECT_FALSE(fires(kLibCpp,
                       "void f() {\n"
                       "  for (int i = 0; i < n; ++i) { work(); }\n"
                       "  Tape tape(backend);\n"
                       "}\n",
                       "tape-in-loop"));
    // Braces inside the loop header don't open a body early.
    EXPECT_FALSE(fires(kLibCpp,
                       "void f() {\n"
                       "  for (int x : std::vector<int>{1, 2}) { use(x); }\n"
                       "  Tape tape(backend);\n"
                       "}\n",
                       "tape-in-loop"));
    // Tool code is exempt; benches/tests measure the eager path.
    EXPECT_FALSE(fires(kToolCpp,
                       "void f() {\n"
                       "  for (;;) { Tape tape; }\n"
                       "}\n",
                       "tape-in-loop"));
}

TEST(LintTapeInLoop, SuppressionMarksTheIntentionalEagerPath)
{
    EXPECT_FALSE(fires(kLibCpp,
                       "void f() {\n"
                       "  for (;;) {\n"
                       "    // smoothe-lint: allow(tape-in-loop)\n"
                       "    Tape tape(backend, &arena);\n"
                       "  }\n"
                       "}\n",
                       "tape-in-loop"));
}

// ------------------------------------------------------------------ reporting

TEST(LintReporting, FindingsCarryPathLineAndSortByLine)
{
    const auto findings = lint::lintSource(
        kLibCpp, "int a;\nint* p = new int;\ndelete p;\n");
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(findings[0].rule, "raw-new");
    EXPECT_EQ(findings[0].path, kLibCpp);
    EXPECT_EQ(findings[0].line, 2);
    EXPECT_EQ(findings[1].rule, "raw-delete");
    EXPECT_EQ(findings[1].line, 3);
}

TEST(LintReporting, TextAndJsonRendering)
{
    lint::LintReport report;
    report.filesScanned = 1;
    report.findings = lint::lintSource(kLibCpp, "int* p = new int;\n");
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_FALSE(report.clean());

    const std::string text = lint::renderText(report);
    EXPECT_NE(text.find("src/foo/bar.cpp:1: [raw-new]"), std::string::npos)
        << text;
    EXPECT_NE(text.find("1 finding in 1 file"), std::string::npos) << text;

    const std::string json = lint::renderJson(report).dump();
    EXPECT_NE(json.find("\"raw-new\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"files_scanned\""), std::string::npos) << json;
}

TEST(LintReporting, RuleCatalogCoversEveryEmittedRule)
{
    std::vector<std::string> known;
    for (const lint::RuleInfo& info : lint::ruleCatalog())
        known.push_back(info.name);
    for (const char* rule :
         {"raw-new", "raw-delete", "std-thread", "no-rand", "no-assert",
          "iostream-header", "include-guard", "tape-in-loop"}) {
        EXPECT_NE(std::find(known.begin(), known.end(), rule), known.end())
            << rule;
    }
}

// ---------------------------------------------------------------- lexer edges

TEST(LintLexer, TracksLinesAcrossBlockCommentsAndRawStrings)
{
    // The `new` on line 4 must be reported there, not where the comment
    // started.
    const std::string source = "/* line1\nline2 */\nint a;\nint* p = new "
                               "int;\n";
    const auto findings = lint::lintSource(kLibCpp, source);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 4);
}

TEST(LintLexer, RecordsSuppressionsPerRule)
{
    const lint::LexedFile lexed =
        lint::lex("// smoothe-lint: allow(raw-new, no-rand)\nint x;\n");
    EXPECT_TRUE(lexed.suppressed("raw-new", 1));
    EXPECT_TRUE(lexed.suppressed("no-rand", 2)); // line-above form
    EXPECT_FALSE(lexed.suppressed("no-assert", 1));
    EXPECT_FALSE(lexed.suppressed("raw-new", 3));
}

} // namespace
