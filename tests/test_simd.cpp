/**
 * @file
 * Scalar <-> AVX2 kernel parity tests.
 *
 * The dispatch contract (src/tensor/simd.hpp) says every AVX2 kernel
 * except the segment-softmax exponential is bit-identical to its
 * generic counterpart; these tests enforce that with memcmp over
 * randomized shapes, including non-multiple-of-8 tails, empty CSR
 * rows, and empty segments. Softmax is compared with a documented ULP
 * tolerance instead. On hardware without AVX2 the parity tests skip
 * (there is no second variant to compare).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "autodiff/matexp.hpp"
#include "tensor/kernels.hpp"
#include "tensor/simd.hpp"
#include "tensor/sparse.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace st = smoothe::tensor;
namespace simd = smoothe::tensor::simd;
namespace util = smoothe::util;

namespace {

/** Restores the process-wide SIMD level on scope exit. */
class LevelGuard
{
  public:
    LevelGuard() : saved_(simd::activeLevel()) {}
    ~LevelGuard() { simd::setLevel(saved_); }
    LevelGuard(const LevelGuard&) = delete;
    LevelGuard& operator=(const LevelGuard&) = delete;

  private:
    simd::Level saved_;
};

bool
avx2Available()
{
    return simd::detectedLevel() == simd::Level::Avx2;
}

st::Tensor
randomTensor(std::size_t rows, std::size_t cols, util::Rng& rng)
{
    st::Tensor t(rows, cols);
    for (std::size_t i = 0; i < t.size(); ++i)
        t.data()[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
    return t;
}

bool
bitEqual(const st::Tensor& a, const st::Tensor& b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/** ULP distance between two finite floats of the same sign regime. */
std::uint32_t
ulpDiff(float a, float b)
{
    std::int32_t ia;
    std::int32_t ib;
    std::memcpy(&ia, &a, sizeof(ia));
    std::memcpy(&ib, &b, sizeof(ib));
    if (ia < 0)
        ia = std::numeric_limits<std::int32_t>::min() - ia;
    if (ib < 0)
        ib = std::numeric_limits<std::int32_t>::min() - ib;
    const std::int64_t d =
        static_cast<std::int64_t>(ia) - static_cast<std::int64_t>(ib);
    return static_cast<std::uint32_t>(d < 0 ? -d : d);
}

/** Runs `body(out)` under both SIMD levels and returns the outputs. */
template <typename Body>
std::pair<st::Tensor, st::Tensor>
runBothLevels(std::size_t rows, std::size_t cols, Body&& body)
{
    LevelGuard guard;
    st::Tensor scalarOut(rows, cols);
    st::Tensor avxOut(rows, cols);
    simd::setLevel(simd::Level::Scalar);
    body(scalarOut);
    simd::setLevel(simd::Level::Avx2);
    body(avxOut);
    return {std::move(scalarOut), std::move(avxOut)};
}

/** Random segment index over `cols` items with some empty segments. */
st::SegmentIndex
randomSegments(std::size_t cols, std::size_t num_segments, util::Rng& rng)
{
    std::vector<std::uint32_t> assignment(cols);
    for (std::size_t i = 0; i < cols; ++i) {
        // Skew toward the low segments so the tail segments of the
        // index are often empty.
        const std::size_t s = rng.uniformIndex(num_segments);
        assignment[i] = static_cast<std::uint32_t>(
            s < num_segments / 2 ? s : rng.uniformIndex(num_segments));
    }
    return st::SegmentIndex::fromAssignment(assignment, num_segments);
}

const std::size_t kRowCounts[] = {1, 3, 8, 9, 17};
const std::size_t kColCounts[] = {1, 7, 8, 65, 1000};

} // namespace

TEST(SimdDispatch, SetLevelClampsToDetected)
{
    LevelGuard guard;
    simd::setLevel(simd::Level::Avx2);
    EXPECT_EQ(simd::activeLevel(), simd::detectedLevel());
    simd::setLevel(simd::Level::Scalar);
    EXPECT_EQ(simd::activeLevel(), simd::Level::Scalar);
    EXPECT_FALSE(simd::avx2Active());
    EXPECT_STREQ(simd::kernelSuffix(), "");
    if (avx2Available()) {
        simd::setLevel(simd::Level::Avx2);
        EXPECT_TRUE(simd::avx2Active());
        EXPECT_STREQ(simd::kernelSuffix(), "@avx2");
    }
}

TEST(SimdDispatch, LevelNamesAreStable)
{
    EXPECT_STREQ(simd::levelName(simd::Level::Scalar), "scalar");
    EXPECT_STREQ(simd::levelName(simd::Level::Avx2), "avx2");
}

TEST(SimdParity, ElementwiseKernelsAreBitIdentical)
{
    if (!avx2Available())
        GTEST_SKIP() << "CPU lacks AVX2; nothing to compare";
    util::Rng rng(0xe1e3);
    for (const std::size_t rows : kRowCounts) {
        for (const std::size_t cols : kColCounts) {
            const st::Tensor a = randomTensor(rows, cols, rng);
            const st::Tensor b = randomTensor(rows, cols, rng);
            const st::Tensor c = randomTensor(rows, cols, rng);
            const st::Tensor cRow = randomTensor(1, cols, rng);
            const float alpha =
                static_cast<float>(rng.uniform(-3.0, 3.0));
            const float beta = static_cast<float>(rng.uniform(-3.0, 3.0));
            const auto check = [&](const char* what, auto&& body) {
                auto [lhs, rhs] = runBothLevels(rows, cols, body);
                EXPECT_TRUE(bitEqual(lhs, rhs))
                    << what << " " << rows << "x" << cols;
            };
            check("add", [&](st::Tensor& out) {
                st::addInto(a, b, out, st::Backend::Vectorized);
            });
            check("sub", [&](st::Tensor& out) {
                st::subInto(a, b, out, st::Backend::Vectorized);
            });
            check("mul", [&](st::Tensor& out) {
                st::mulInto(a, b, out, st::Backend::Vectorized);
            });
            check("scale", [&](st::Tensor& out) {
                st::scaleInto(a, alpha, out, st::Backend::Vectorized);
            });
            check("add_scalar", [&](st::Tensor& out) {
                st::addScalarInto(a, alpha, out, st::Backend::Vectorized);
            });
            check("affine", [&](st::Tensor& out) {
                st::affineInto(a, alpha, beta, out,
                               st::Backend::Vectorized);
            });
            check("relu", [&](st::Tensor& out) {
                st::reluInto(a, out, st::Backend::Vectorized);
            });
            check("mul_const", [&](st::Tensor& out) {
                st::mulConstInto(a, c, out, st::Backend::Vectorized);
            });
            check("mul_const_broadcast", [&](st::Tensor& out) {
                st::mulConstInto(a, cRow, out, st::Backend::Vectorized);
            });
            check("add_const", [&](st::Tensor& out) {
                st::addConstInto(a, c, out, st::Backend::Vectorized);
            });
            check("mul_add_const", [&](st::Tensor& out) {
                st::mulAddConstInto(a, c, cRow, out,
                                    st::Backend::Vectorized);
            });
        }
    }
}

TEST(SimdParity, ReluHandlesNegativeZeroIdentically)
{
    if (!avx2Available())
        GTEST_SKIP() << "CPU lacks AVX2; nothing to compare";
    st::Tensor a(1, 11);
    a.data()[0] = -0.0f;
    a.data()[1] = 0.0f;
    a.data()[2] = -1.5f;
    a.data()[3] = 1.5f;
    for (std::size_t i = 4; i < a.size(); ++i)
        a.data()[i] = (i % 2 ? 1.0f : -1.0f) * static_cast<float>(i);
    auto [lhs, rhs] = runBothLevels(1, 11, [&](st::Tensor& out) {
        st::reluInto(a, out, st::Backend::Vectorized);
    });
    EXPECT_TRUE(bitEqual(lhs, rhs));
}

TEST(SimdParity, ElemChainMatchesUnfusedSequenceBitwise)
{
    if (!avx2Available())
        GTEST_SKIP() << "CPU lacks AVX2; nothing to compare";
    util::Rng rng(0xc4a1);
    for (const std::size_t rows : kRowCounts) {
        for (const std::size_t cols : {9UL, 100UL, 1000UL}) {
            const st::Tensor a = randomTensor(rows, cols, rng);
            std::vector<st::ElemStage> stages;
            for (int s = 0; s < 4; ++s) {
                st::ElemStage stage;
                switch (rng.uniformIndex(4)) {
                  case 0:
                    stage.kind = st::ElemStageKind::Scale;
                    stage.alpha =
                        static_cast<float>(rng.uniform(-2.0, 2.0));
                    break;
                  case 1:
                    stage.kind = st::ElemStageKind::AddScalar;
                    stage.alpha =
                        static_cast<float>(rng.uniform(-2.0, 2.0));
                    break;
                  case 2:
                    stage.kind = st::ElemStageKind::MulConst;
                    stage.c = randomTensor(
                        rng.bernoulli(0.5) ? 1 : rows, cols, rng);
                    break;
                  default:
                    stage.kind = st::ElemStageKind::AddConst;
                    stage.c = randomTensor(
                        rng.bernoulli(0.5) ? 1 : rows, cols, rng);
                    break;
                }
                stages.push_back(std::move(stage));
            }

            // Scalar level vs AVX2 level of the fused kernel.
            auto [lhs, rhs] = runBothLevels(rows, cols, [&](st::Tensor&
                                                                out) {
                st::elemChainInto(a, stages, out,
                                  st::Backend::Vectorized);
            });
            EXPECT_TRUE(bitEqual(lhs, rhs)) << rows << "x" << cols;

            // Fused vs the unfused kernel sequence (also bitwise: one
            // rounded op per stage either way).
            st::Tensor cur = a;
            st::Tensor next(rows, cols);
            for (const st::ElemStage& stage : stages) {
                switch (stage.kind) {
                  case st::ElemStageKind::Scale:
                    st::scaleInto(cur, stage.alpha, next,
                                  st::Backend::Vectorized);
                    break;
                  case st::ElemStageKind::AddScalar:
                    st::addScalarInto(cur, stage.alpha, next,
                                      st::Backend::Vectorized);
                    break;
                  case st::ElemStageKind::MulConst:
                    st::mulConstInto(cur, stage.c, next,
                                     st::Backend::Vectorized);
                    break;
                  case st::ElemStageKind::AddConst:
                    st::addConstInto(cur, stage.c, next,
                                     st::Backend::Vectorized);
                    break;
                }
                std::swap(cur, next);
            }
            EXPECT_TRUE(bitEqual(rhs, cur)) << rows << "x" << cols;
        }
    }
}

TEST(SimdParity, GatherColsIsBitIdentical)
{
    if (!avx2Available())
        GTEST_SKIP() << "CPU lacks AVX2; nothing to compare";
    util::Rng rng(0x6a7e);
    for (const std::size_t rows : kRowCounts) {
        const std::size_t srcCols = 257;
        const st::Tensor a = randomTensor(rows, srcCols, rng);
        for (const std::size_t outCols : {1UL, 15UL, 64UL, 301UL}) {
            std::vector<std::uint32_t> index(outCols);
            for (std::uint32_t& v : index)
                v = static_cast<std::uint32_t>(
                    rng.uniformIndex(srcCols));
            auto [lhs, rhs] =
                runBothLevels(rows, outCols, [&](st::Tensor& out) {
                    st::gatherColsInto(a, index, out,
                                       st::Backend::Vectorized);
                });
            EXPECT_TRUE(bitEqual(lhs, rhs)) << rows << "x" << outCols;
        }
    }
}

TEST(SimdParity, SpmvIsBitIdenticalWithEmptyRows)
{
    if (!avx2Available())
        GTEST_SKIP() << "CPU lacks AVX2; nothing to compare";
    util::Rng rng(0x59a7);
    for (const std::size_t batch : kRowCounts) {
        const std::size_t numRows = 97;
        const std::size_t numCols = 211;
        st::CsrMatrix m;
        m.numRows = numRows;
        m.numCols = numCols;
        m.rowOffsets.push_back(0);
        for (std::size_t i = 0; i < numRows; ++i) {
            // ~1 row in 4 is empty; others carry 1..12 entries.
            const std::size_t nnz =
                rng.bernoulli(0.25) ? 0 : 1 + rng.uniformIndex(12);
            for (std::size_t e = 0; e < nnz; ++e) {
                m.colIndices.push_back(static_cast<std::uint32_t>(
                    rng.uniformIndex(numCols)));
                m.values.push_back(
                    static_cast<float>(rng.uniform(-1.0, 1.0)));
            }
            m.rowOffsets.push_back(
                static_cast<std::uint32_t>(m.colIndices.size()));
        }
        const st::Tensor x = randomTensor(batch, numCols, rng);
        auto [lhs, rhs] =
            runBothLevels(batch, numRows, [&](st::Tensor& out) {
                st::spmv(m, x, out, st::Backend::Vectorized);
            });
        EXPECT_TRUE(bitEqual(lhs, rhs)) << "batch " << batch;

        // Transposed product through the CSC twin, same contract.
        const st::CscMatrix t = st::cscFromCsr(m);
        const st::Tensor y = randomTensor(batch, numRows, rng);
        auto [lhsT, rhsT] =
            runBothLevels(batch, numCols, [&](st::Tensor& out) {
                st::spmvT(t, y, out, st::Backend::Vectorized);
            });
        EXPECT_TRUE(bitEqual(lhsT, rhsT)) << "batch " << batch;
    }
}

TEST(SimdParity, SegmentProductComplementIsBitIdentical)
{
    if (!avx2Available())
        GTEST_SKIP() << "CPU lacks AVX2; nothing to compare";
    util::Rng rng(0x9c0d);
    for (const std::size_t rows : kRowCounts) {
        for (const std::size_t cols : {16UL, 300UL}) {
            const std::size_t numSegments = cols / 3 + 2;
            const st::SegmentIndex segs =
                randomSegments(cols, numSegments, rng);
            const st::Tensor a = randomTensor(rows, cols, rng);
            auto [lhs, rhs] =
                runBothLevels(rows, numSegments, [&](st::Tensor& out) {
                    st::segmentProductComplementInto(
                        a, segs, out, st::Backend::Vectorized);
                });
            EXPECT_TRUE(bitEqual(lhs, rhs)) << rows << "x" << cols;
        }
    }
}

TEST(SimdParity, SegmentSoftmaxMatchesWithinUlpTolerance)
{
    if (!avx2Available())
        GTEST_SKIP() << "CPU lacks AVX2; nothing to compare";
    util::Rng rng(0x50f7);
    // The AVX2 softmax uses a polynomial expf, so this is the one
    // kernel compared with a tolerance instead of memcmp. The bound is
    // generous relative to the few-ULP expf error because the
    // normalization divides two already-perturbed quantities.
    constexpr std::uint32_t kMaxUlp = 64;
    for (const std::size_t rows : kRowCounts) {
        for (const std::size_t cols : {24UL, 500UL}) {
            const std::size_t numSegments = cols / 4 + 1;
            const st::SegmentIndex segs =
                randomSegments(cols, numSegments, rng);
            const st::Tensor a = randomTensor(rows, cols, rng);
            auto [lhs, rhs] =
                runBothLevels(rows, cols, [&](st::Tensor& out) {
                    st::segmentSoftmaxInto(a, segs, out,
                                           st::Backend::Vectorized);
                });
            std::uint32_t worst = 0;
            for (std::size_t i = 0; i < lhs.size(); ++i)
                worst = std::max(
                    worst, ulpDiff(lhs.data()[i], rhs.data()[i]));
            EXPECT_LE(worst, kMaxUlp) << rows << "x" << cols;
        }
    }
}

TEST(SimdParity, MatrixExpIsBitIdentical)
{
    if (!avx2Available())
        GTEST_SKIP() << "CPU lacks AVX2; nothing to compare";
    util::Rng rng(0xeff1);
    for (const std::size_t d : {1UL, 3UL, 5UL, 12UL}) {
        std::vector<float> a(d * d);
        for (float& v : a)
            v = rng.bernoulli(0.3)
                    ? 0.0f
                    : static_cast<float>(rng.uniform(-0.5, 0.5));
        std::vector<float> scalarOut(d * d);
        std::vector<float> avxOut(d * d);
        LevelGuard guard;
        simd::setLevel(simd::Level::Scalar);
        smoothe::ad::expm(a.data(), d, scalarOut.data());
        simd::setLevel(simd::Level::Avx2);
        smoothe::ad::expm(a.data(), d, avxOut.data());
        EXPECT_EQ(std::memcmp(scalarOut.data(), avxOut.data(),
                              d * d * sizeof(float)),
                  0)
            << "d=" << d;
    }
}

TEST(SparseLayout, CsrFromSegmentsAndCscTranspose)
{
    st::SegmentIndex segs;
    segs.offsets = {0, 2, 2, 5};
    segs.items = {1, 3, 0, 2, 3};
    const st::CsrMatrix m = st::csrFromSegments(segs, 4);
    EXPECT_EQ(m.numRows, 3u);
    EXPECT_EQ(m.numCols, 4u);
    EXPECT_EQ(m.nnz(), 5u);
    for (float v : m.values)
        EXPECT_EQ(v, 1.0f);

    // Dense reference product: row 0 sums items {1, 3}, row 1 is
    // empty, row 2 sums items {0, 2, 3}.
    st::Tensor x(2, 4);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(i + 1);
    st::Tensor out(2, 3);
    st::spmv(m, x, out, st::Backend::Scalar);
    EXPECT_FLOAT_EQ(out.at(0, 0), x.at(0, 1) + x.at(0, 3));
    EXPECT_FLOAT_EQ(out.at(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(out.at(0, 2),
                    x.at(0, 0) + x.at(0, 2) + x.at(0, 3));
    EXPECT_FLOAT_EQ(out.at(1, 0), x.at(1, 1) + x.at(1, 3));

    const st::CscMatrix t = st::cscFromCsr(m);
    EXPECT_EQ(t.nnz(), m.nnz());
    // spmvT(y) must equal the dense transpose product.
    st::Tensor y(1, 3);
    y.data()[0] = 2.0f;
    y.data()[1] = 5.0f;
    y.data()[2] = -1.0f;
    st::Tensor outT(1, 4);
    st::spmvT(t, y, outT, st::Backend::Scalar);
    EXPECT_FLOAT_EQ(outT.at(0, 0), -1.0f);        // column 0: row 2
    EXPECT_FLOAT_EQ(outT.at(0, 1), 2.0f);         // column 1: row 0
    EXPECT_FLOAT_EQ(outT.at(0, 2), -1.0f);        // column 2: row 2
    EXPECT_FLOAT_EQ(outT.at(0, 3), 2.0f + -1.0f); // column 3: rows 0,2
}

TEST(SparseLayout, ScalarAndVectorizedSpmvAgree)
{
    // The Scalar backend accumulates in double, Vectorized in float;
    // they agree to float tolerance, not bitwise.
    util::Rng rng(0xb0b1);
    st::SegmentIndex segs = randomSegments(50, 20, rng);
    const st::CsrMatrix m = st::csrFromSegments(segs, 50);
    const st::Tensor x = randomTensor(4, 50, rng);
    st::Tensor slow(4, 20);
    st::Tensor fast(4, 20);
    st::spmv(m, x, slow, st::Backend::Scalar);
    st::spmv(m, x, fast, st::Backend::Vectorized);
    for (std::size_t i = 0; i < slow.size(); ++i)
        EXPECT_NEAR(slow.data()[i], fast.data()[i], 1e-4f);
}
