/**
 * @file
 * ThreadPool unit tests: full index coverage, chunk partitioning,
 * exception propagation, nested-call serialization, resize, and the
 * determinism contract (identical results for any pool size).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "smoothe/smoothe.hpp"
#include "util/thread_pool.hpp"

namespace util = smoothe::util;

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    util::ThreadPool pool(4);
    constexpr std::size_t n = 10007; // prime: chunks won't divide evenly
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(0, n, 64,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ChunksCoverRangeWithoutOverlap)
{
    util::ThreadPool pool(3);
    std::mutex mutex;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallelForChunks(5, 1000, 128,
                           [&](std::size_t begin, std::size_t end) {
                               std::lock_guard<std::mutex> lock(mutex);
                               chunks.emplace_back(begin, end);
                           });
    std::sort(chunks.begin(), chunks.end());
    ASSERT_FALSE(chunks.empty());
    EXPECT_EQ(chunks.front().first, 5u);
    EXPECT_EQ(chunks.back().second, 1000u);
    for (std::size_t c = 1; c < chunks.size(); ++c)
        EXPECT_EQ(chunks[c].first, chunks[c - 1].second);
    for (const auto& [begin, end] : chunks) {
        EXPECT_LT(begin, end);
        if (end != 1000u) {
            EXPECT_EQ(end - begin, 128u);
        }
    }
}

TEST(ThreadPool, GrainLargerThanRangeRunsInline)
{
    util::ThreadPool pool(4);
    std::size_t calls = 0;
    pool.parallelForChunks(0, 10, 100,
                           [&](std::size_t begin, std::size_t end) {
                               ++calls;
                               EXPECT_EQ(begin, 0u);
                               EXPECT_EQ(end, 10u);
                           });
    EXPECT_EQ(calls, 1u);
}

TEST(ThreadPool, EmptyRangeDoesNothing)
{
    util::ThreadPool pool(2);
    bool called = false;
    pool.parallelFor(7, 7, 1, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionPropagatesAndRemainingChunksRun)
{
    util::ThreadPool pool(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    EXPECT_THROW(
        pool.parallelFor(0, n, 10,
                         [&](std::size_t i) {
                             hits[i].fetch_add(1);
                             if (i == 500)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool finishes every other chunk before rethrowing; only the
    // remainder of the throwing chunk [500, 510) is abandoned.
    for (std::size_t i = 0; i < n; ++i) {
        if (i > 500 && i < 510)
            continue;
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
    EXPECT_EQ(hits[500].load(), 1);
}

TEST(ThreadPool, NestedParallelForSerializesInsteadOfDeadlocking)
{
    util::ThreadPool pool(2);
    std::atomic<std::size_t> total{0};
    pool.parallelFor(0, 4, 1, [&](std::size_t) {
        // A nested submission into the same fixed pool must run inline on
        // whichever thread issued it; resubmitting could deadlock.
        pool.parallelFor(0, 100, 10,
                         [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 400u);
}

TEST(ThreadPool, SizeOneRunsInlineWithoutWorkers)
{
    util::ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    std::size_t sum = 0; // unsynchronized on purpose: everything inline
    pool.parallelFor(0, 100, 8, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, ResizeChangesWorkerCount)
{
    util::ThreadPool pool(1);
    pool.resize(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<std::size_t> count{0};
    pool.parallelFor(0, 1000, 10,
                     [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 1000u);
    pool.resize(1);
    EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, OnWorkerThreadOnlyInsideWorkers)
{
    EXPECT_FALSE(util::ThreadPool::onWorkerThread());
    EXPECT_EQ(util::ThreadPool::currentThreadLabel(), nullptr);
    util::ThreadPool pool(4);
    std::atomic<int> sawWorker{0};
    pool.parallelFor(0, 64, 1, [&](std::size_t) {
        if (util::ThreadPool::onWorkerThread()) {
            sawWorker.fetch_add(1);
            EXPECT_NE(util::ThreadPool::currentThreadLabel(), nullptr);
        }
    });
    // The caller runs chunks too, so not every index sees a worker; on a
    // single-core host the workers may not win any chunk at all.
    EXPECT_GE(sawWorker.load(), 0);
    EXPECT_FALSE(util::ThreadPool::onWorkerThread());
}

TEST(ThreadPool, ChunkBoundariesIndependentOfPoolSize)
{
    auto collect = [](std::size_t threads) {
        util::ThreadPool pool(threads);
        std::mutex mutex;
        std::vector<std::pair<std::size_t, std::size_t>> chunks;
        pool.parallelForChunks(0, 4097, 256,
                               [&](std::size_t begin, std::size_t end) {
                                   std::lock_guard<std::mutex> lock(mutex);
                                   chunks.emplace_back(begin, end);
                               });
        std::sort(chunks.begin(), chunks.end());
        return chunks;
    };
    const auto two = collect(2);
    const auto eight = collect(8);
    EXPECT_EQ(two, eight);
}

/**
 * End-to-end determinism: a SmoothE extraction (softmax, propagation,
 * NOTEARS penalty, Adam, sampling) must produce the same cost and the
 * same chosen e-nodes for pool sizes 1 and 4 — in both execution modes
 * (compiled Program replay and eager per-iteration tape rebuild), and
 * the two modes must agree with each other.
 */
TEST(ThreadPoolDeterminism, ExtractionIdenticalAcrossPoolSizes)
{
    namespace core = smoothe::core;
    namespace eg = smoothe::eg;

    // A small diamond-shaped e-graph with a cycle and cost trade-offs.
    eg::EGraph graph;
    const auto root = graph.addClass();
    const auto left = graph.addClass();
    const auto right = graph.addClass();
    const auto leaf = graph.addClass();
    graph.addNode(root, "fast", {left}, 1.0);
    graph.addNode(root, "slow", {right}, 2.0);
    graph.addNode(left, "l0", {leaf}, 4.0);
    graph.addNode(left, "l1", {leaf, right}, 1.0);
    graph.addNode(right, "r0", {leaf}, 2.0);
    graph.addNode(leaf, "x", {}, 0.5);
    graph.setRoot(root);
    ASSERT_FALSE(graph.finalize().has_value());

    auto runAt = [&graph](std::size_t threads, bool compiled) {
        core::SmoothEConfig config;
        config.numSeeds = 8;
        config.maxIterations = 40;
        config.numThreads = threads;
        config.compiledReplay = compiled;
        core::SmoothEExtractor extractor(config);
        smoothe::extract::ExtractOptions options;
        options.seed = 7;
        options.timeLimitSeconds = 1e9;
        return extractor.extract(graph, options);
    };

    const auto serial = runAt(1, true);
    const auto parallel = runAt(4, true);
    const auto serialEager = runAt(1, false);
    const auto parallelEager = runAt(4, false);
    util::ThreadPool::setGlobalThreads(1); // restore for other tests
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    ASSERT_TRUE(serialEager.ok());
    ASSERT_TRUE(parallelEager.ok());
    EXPECT_EQ(serial.cost, parallel.cost);
    EXPECT_EQ(serial.selection.choice, parallel.selection.choice);
    EXPECT_EQ(serial.cost, serialEager.cost);
    EXPECT_EQ(serial.selection.choice, serialEager.selection.choice);
    EXPECT_EQ(serialEager.cost, parallelEager.cost);
    EXPECT_EQ(serialEager.selection.choice,
              parallelEager.selection.choice);
}
