/**
 * @file
 * Direct tests for the discrete sampling stage (Section 3.5): arg-max
 * behaviour, cycle repair, temperature stochasticity, dead ends.
 */

#include <gtest/gtest.h>

#include <set>

#include "datasets/registry.hpp"
#include "smoothe/sampler.hpp"

namespace core = smoothe::core;
namespace ds = smoothe::datasets;
namespace eg = smoothe::eg;
namespace ex = smoothe::extract;

namespace {

/** cp row that deterministically prefers the given nodes. */
std::vector<float>
preferenceRow(const eg::EGraph& graph, const std::set<eg::NodeId>& prefer)
{
    std::vector<float> cp(graph.numNodes(), 0.0f);
    for (eg::ClassId cls = 0; cls < graph.numClasses(); ++cls) {
        const auto& members = graph.nodesInClass(cls);
        float low = 1.0f / (members.size() + 1.0f);
        for (eg::NodeId nid : members)
            cp[nid] = prefer.count(nid) ? 0.9f : low;
    }
    return cp;
}

} // namespace

TEST(Sampler, ArgMaxFollowsCp)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    core::GreedySampler sampler(g);
    smoothe::util::Rng rng(1);

    // Prefer the optimal Figure 2c nodes: inner add (node 8).
    const auto cp = preferenceRow(g, {8});
    const auto sel = sampler.sample(cp.data(), true, 0.0f, rng);
    ASSERT_TRUE(sel.chosen(g.root()));
    EXPECT_TRUE(ex::validate(g, sel).ok());
    EXPECT_EQ(sel.choice[6], 8u); // sec2 class picks the rewritten add
    EXPECT_DOUBLE_EQ(ex::dagCost(g, sel), 19.0);
}

TEST(Sampler, RepairAvoidsCycle)
{
    // Class a's preferred node closes a cycle; repair must fall back to
    // the lower-cp acyclic alternative.
    eg::EGraph g;
    const auto root = g.addClass();
    const auto a = g.addClass();
    const auto b = g.addClass();
    g.addNode(root, "r", {a}, 0.0);
    const auto fab = g.addNode(a, "fab", {b}, 0.0);
    g.addNode(a, "leafA", {}, 1.0);
    const auto gba = g.addNode(b, "gba", {a}, 0.0);
    const auto leafB = g.addNode(b, "leafB", {}, 1.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());

    core::GreedySampler sampler(g);
    smoothe::util::Rng rng(2);
    std::vector<float> cp(g.numNodes(), 0.1f);
    cp[0] = 1.0f;   // root node
    cp[fab] = 0.9f; // prefer the cyclic pair
    cp[gba] = 0.9f;
    cp[leafB] = 0.1f;

    const auto repaired = sampler.sample(cp.data(), true, 0.0f, rng);
    ASSERT_TRUE(repaired.chosen(g.root()));
    EXPECT_TRUE(ex::validate(g, repaired).ok());

    // Without repair the arg-max sample is cyclic and caught by validate.
    const auto raw = sampler.sample(cp.data(), false, 0.0f, rng);
    ASSERT_TRUE(raw.chosen(g.root()));
    EXPECT_EQ(ex::validate(g, raw).violation, ex::Violation::Cyclic);
}

TEST(Sampler, InfeasibleGraphReportsDeadEnd)
{
    eg::EGraph g;
    const auto root = g.addClass();
    g.addNode(root, "self", {root}, 1.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());
    core::GreedySampler sampler(g);
    smoothe::util::Rng rng(3);
    std::vector<float> cp(g.numNodes(), 1.0f);
    const auto sel = sampler.sample(cp.data(), true, 0.0f, rng);
    EXPECT_FALSE(sel.chosen(g.root()));
}

TEST(Sampler, TemperatureZeroIsDeterministic)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    core::GreedySampler sampler(g);
    smoothe::util::Rng rng(4);
    const auto cp = preferenceRow(g, {7}); // prefer square(sec)
    const auto a = sampler.sample(cp.data(), true, 0.0f, rng);
    const auto b = sampler.sample(cp.data(), true, 0.0f, rng);
    EXPECT_EQ(a.choice, b.choice);
}

TEST(Sampler, TemperatureExploresAlternatives)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    core::GreedySampler sampler(g);
    smoothe::util::Rng rng(5);
    // Uniform cp: high temperature should hit multiple distinct solutions.
    std::vector<float> cp(g.numNodes(), 0.5f);
    std::set<std::vector<eg::NodeId>> distinct;
    for (int i = 0; i < 50; ++i) {
        const auto sel = sampler.sample(cp.data(), true, 1.0f, rng);
        ASSERT_TRUE(sel.chosen(g.root()));
        EXPECT_TRUE(ex::validate(g, sel).ok());
        distinct.insert(sel.choice);
    }
    EXPECT_GE(distinct.size(), 2u);
}

TEST(Sampler, RepairedSamplesValidAcrossFamilies)
{
    // Repair is greedy (no backtracking), so a sample can rarely dead-end
    // on strongly cyclic graphs — SmoothE just discards those seeds. The
    // property: every *returned* sample validates, and dead ends are the
    // exception, not the rule.
    smoothe::util::Rng rng(6);
    for (const char* family : {"tensat", "rover", "set"}) {
        const auto graphs = ds::loadFamily(family, 0.05, 55);
        const eg::EGraph& g = graphs.front().graph;
        core::GreedySampler sampler(g);
        std::vector<float> cp(g.numNodes());
        int valid = 0;
        const int trials = 20;
        for (int trial = 0; trial < trials; ++trial) {
            for (auto& v : cp)
                v = static_cast<float>(rng.uniform(0.0, 1.0));
            const auto sel = sampler.sample(cp.data(), true, 0.0f, rng);
            if (!sel.chosen(g.root()))
                continue; // dead end: discarded, never "invalid"
            EXPECT_TRUE(ex::validate(g, sel).ok()) << family;
            ++valid;
        }
        EXPECT_GE(valid, trials / 2) << family;
    }
}
