/**
 * @file
 * Unit tests for the telemetry subsystem (smoothe::obs): log levels and
 * sinks, the metrics registry, Chrome trace spans, the span-backed
 * PhaseProfiler, and the allocation-free disabled fast path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "util/json.hpp"

namespace so = smoothe::obs;
namespace su = smoothe::util;

// ---------------------------------------------------------------------------
// Global allocation counter for the disabled-fast-path test. Counting in
// the test binary's own operator new is the only way to prove "allocates
// nothing" without a heap profiler.

namespace {
std::atomic<std::uint64_t> gAllocations{0};
} // namespace

void*
operator new(std::size_t size)
{
    gAllocations.fetch_add(1, std::memory_order_relaxed);
    void* p = std::malloc(size ? size : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

/** Captures records in memory so tests can assert on them. */
class CaptureSink : public so::Sink
{
  public:
    struct Entry
    {
        so::Level level;
        std::string component;
        std::string message;
    };

    void
    write(const so::LogRecord& record) override
    {
        entries.push_back({record.level, record.component, record.message});
    }

    std::vector<Entry> entries;
};

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

} // namespace

TEST(Log, LevelNamesRoundTrip)
{
    EXPECT_STREQ(so::levelName(so::Level::Debug), "debug");
    EXPECT_STREQ(so::levelName(so::Level::Off), "off");
    EXPECT_EQ(so::parseLevel("DEBUG"), so::Level::Debug);
    EXPECT_EQ(so::parseLevel("warn"), so::Level::Warn);
    EXPECT_EQ(so::parseLevel("Error"), so::Level::Error);
    EXPECT_FALSE(so::parseLevel("loud").has_value());
}

TEST(Log, SpecFiltersByComponent)
{
    ASSERT_TRUE(so::configureLogging("obs_test_a=debug,*=error"));
    so::Logger a("obs_test_a");
    so::Logger b("obs_test_b");
    EXPECT_TRUE(a.enabled(so::Level::Debug));
    EXPECT_FALSE(a.enabled(so::Level::Trace));
    EXPECT_FALSE(b.enabled(so::Level::Warn));
    EXPECT_TRUE(b.enabled(so::Level::Error));

    // A later component entry overrides the default for that component.
    ASSERT_TRUE(so::configureLogging("obs_test_b=trace"));
    EXPECT_TRUE(b.enabled(so::Level::Trace));

    // Unknown levels are rejected without changing anything.
    EXPECT_FALSE(so::configureLogging("obs_test_b=loud"));
    EXPECT_TRUE(b.enabled(so::Level::Trace));

    so::setGlobalLogLevel(so::Level::Warn); // restore the default
}

TEST(Log, RecordsReachSinksAndRespectLevel)
{
    auto sink = std::make_unique<CaptureSink>();
    CaptureSink* capture = sink.get();
    so::addLogSink(std::move(sink));

    so::setGlobalLogLevel(so::Level::Warn);
    so::Logger log("obs_test_sink");
    log.debug("hidden %d", 1);
    log.warn("answer %d", 42);
    log.error("%s failed", "stage");

    ASSERT_EQ(capture->entries.size(), 2u);
    EXPECT_EQ(capture->entries[0].level, so::Level::Warn);
    EXPECT_EQ(capture->entries[0].component, "obs_test_sink");
    EXPECT_EQ(capture->entries[0].message, "answer 42");
    EXPECT_EQ(capture->entries[1].message, "stage failed");

    so::resetLogSinks();
}

TEST(Log, JsonlSinkWritesParseableLines)
{
    const std::string path = ::testing::TempDir() + "obs_log.jsonl";
    ASSERT_TRUE(so::addJsonlLogSink(path));
    so::Logger log("obs_test_jsonl");
    log.error("value %d", 7);
    so::resetLogSinks(); // closes the file

    std::istringstream lines(readFile(path));
    std::string line;
    bool found = false;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        const auto doc = su::Json::parse(line);
        ASSERT_TRUE(doc.has_value()) << line;
        const su::Json* component = doc->find("component");
        if (component && component->asString() == "obs_test_jsonl") {
            found = true;
            EXPECT_EQ(doc->find("msg")->asString(), "value 7");
            EXPECT_EQ(doc->find("level")->asString(), "error");
            EXPECT_GE(doc->find("ts")->asNumber(), 0.0);
        }
    }
    EXPECT_TRUE(found);
    std::remove(path.c_str());
}

TEST(Metrics, CounterGaugeArithmetic)
{
    so::Counter& counter = so::counter("test.counter");
    counter.reset();
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.get(), 42u);

    so::Gauge& gauge = so::gauge("test.gauge");
    gauge.set(2.5);
    EXPECT_DOUBLE_EQ(gauge.get(), 2.5);
    gauge.set(-1.0);
    EXPECT_DOUBLE_EQ(gauge.get(), -1.0);

    // Same name returns the same metric.
    EXPECT_EQ(&so::counter("test.counter"), &counter);
}

TEST(Metrics, HistogramBuckets)
{
    so::Histogram& hist = so::histogram("test.hist", {1.0, 10.0});
    hist.reset();
    hist.observe(0.5);  // <= 1
    hist.observe(1.0);  // <= 1 (inclusive upper bound)
    hist.observe(5.0);  // <= 10
    hist.observe(100.0); // overflow
    ASSERT_EQ(hist.numBuckets(), 3u);
    EXPECT_EQ(hist.bucketCount(0), 2u);
    EXPECT_EQ(hist.bucketCount(1), 1u);
    EXPECT_EQ(hist.bucketCount(2), 1u);
    EXPECT_EQ(hist.count(), 4u);
    EXPECT_DOUBLE_EQ(hist.sum(), 106.5);
}

TEST(Metrics, PercentileInterpolatesWithinBuckets)
{
    so::Histogram& hist = so::histogram("test.pctl", {1.0, 10.0});
    hist.reset();
    for (int i = 0; i < 4; ++i)
        hist.observe(0.5); // bucket 0: ranks 1-4
    for (int i = 0; i < 4; ++i)
        hist.observe(5.0); // bucket 1: ranks 5-8
    for (int i = 0; i < 2; ++i)
        hist.observe(100.0); // overflow: ranks 9-10

    // Rank 5 lands 1/4 into bucket 1 → 1 + 0.25 * (10 - 1).
    EXPECT_DOUBLE_EQ(hist.percentile(0.50), 3.25);
    // Rank 2 is halfway through the first bucket, interpolated from 0.
    EXPECT_DOUBLE_EQ(hist.percentile(0.20), 0.5);
    // The overflow bucket has no finite edge: clamp to the last bound.
    EXPECT_DOUBLE_EQ(hist.percentile(0.99), 10.0);
    EXPECT_DOUBLE_EQ(hist.percentile(1.0), 10.0);
    // q <= 0 maps to the first observation's bucket, not a negative rank.
    EXPECT_GE(hist.percentile(0.0), 0.0);
    EXPECT_LE(hist.percentile(0.0), 1.0);
}

TEST(Metrics, PercentileEdgeCases)
{
    so::Histogram& empty = so::histogram("test.pctl_empty", {1.0});
    empty.reset();
    EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);

    // Everything in the first bucket interpolates from zero.
    so::Histogram& low = so::histogram("test.pctl_low", {8.0});
    low.reset();
    for (int i = 0; i < 4; ++i)
        low.observe(1.0);
    EXPECT_DOUBLE_EQ(low.percentile(0.5), 4.0);

    // Everything in the overflow bucket clamps to the last bound.
    so::Histogram& high = so::histogram("test.pctl_high", {1.0, 2.0});
    high.reset();
    high.observe(50.0);
    EXPECT_DOUBLE_EQ(high.percentile(0.5), 2.0);
}

TEST(Metrics, ExponentialBoundsSpanRange)
{
    const auto bounds = so::exponentialBounds(1e-6, 60.0, 36);
    ASSERT_EQ(bounds.size(), 36u);
    EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
    EXPECT_DOUBLE_EQ(bounds.back(), 60.0); // exact despite rounding
    for (std::size_t i = 1; i < bounds.size(); ++i)
        EXPECT_GT(bounds[i], bounds[i - 1]);
    // Geometric spacing: constant ratio between neighbours.
    const double r0 = bounds[1] / bounds[0];
    const double r1 = bounds[20] / bounds[19];
    EXPECT_NEAR(r0, r1, 1e-9);

    // Degenerate requests collapse to a single bound.
    EXPECT_EQ(so::exponentialBounds(1.0, 2.0, 1).size(), 1u);
    EXPECT_EQ(so::exponentialBounds(0.0, 2.0, 8).size(), 1u);
    EXPECT_EQ(so::exponentialBounds(2.0, 2.0, 8).size(), 1u);
}

TEST(Metrics, JsonShape)
{
    so::counter("test.json_counter").reset();
    so::counter("test.json_counter").add(3);
    so::gauge("test.json_gauge").set(1.5);
    so::Histogram& hist = so::histogram("test.json_hist", {2.0});
    hist.reset();
    hist.observe(1.0);
    hist.observe(9.0);

    const auto doc =
        su::Json::parse(so::MetricsRegistry::instance().toJson().dump());
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isObject());
    EXPECT_DOUBLE_EQ(doc->find("test.json_counter")->asNumber(), 3.0);
    EXPECT_DOUBLE_EQ(doc->find("test.json_gauge")->asNumber(), 1.5);

    const su::Json* histJson = doc->find("test.json_hist");
    ASSERT_NE(histJson, nullptr);
    ASSERT_TRUE(histJson->isObject());
    EXPECT_EQ(histJson->find("bounds")->asArray().size(), 1u);
    EXPECT_EQ(histJson->find("counts")->asArray().size(), 2u);
    EXPECT_DOUBLE_EQ(histJson->find("count")->asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(histJson->find("sum")->asNumber(), 10.0);
}

TEST(Trace, SpansProduceBalancedChromeJson)
{
    so::TraceSession& session = so::TraceSession::instance();
    session.start();
    {
        so::Span outer("outer", "test");
        {
            so::Span inner("inner", "test");
        }
        so::traceCounter("test.counter_event", 3.5);
        so::traceInstant("test.instant");
    }
    session.stop();

    // 2 complete spans + 1 counter + 1 instant.
    EXPECT_EQ(session.eventCount(), 4u);

    const auto doc = su::Json::parse(session.toJson().dump());
    ASSERT_TRUE(doc.has_value());
    const su::Json* events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    std::size_t complete = 0;
    bool sawCounter = false;
    for (const su::Json& event : events->asArray()) {
        const std::string ph = event.find("ph")->asString();
        EXPECT_NE(event.find("name"), nullptr);
        EXPECT_NE(event.find("ts"), nullptr);
        EXPECT_NE(event.find("pid"), nullptr);
        EXPECT_NE(event.find("tid"), nullptr);
        if (ph == "X") {
            ++complete;
            EXPECT_GE(event.find("dur")->asNumber(), 0.0);
        } else if (ph == "C") {
            sawCounter = true;
            EXPECT_DOUBLE_EQ(
                event.find("args")->find("value")->asNumber(), 3.5);
        }
    }
    EXPECT_EQ(complete, 2u);
    EXPECT_TRUE(sawCounter);

    // writeTo produces a parseable file.
    const std::string path = ::testing::TempDir() + "obs_trace.json";
    ASSERT_TRUE(session.writeTo(path));
    EXPECT_TRUE(su::Json::parse(readFile(path)).has_value());
    std::remove(path.c_str());
    session.clear();
}

TEST(Trace, SpanEndClosesEarlyExactlyOnce)
{
    so::TraceSession& session = so::TraceSession::instance();
    session.start();
    {
        so::Span span("early", "test");
        span.end();
        span.end(); // second end is a no-op
    } // destructor must not emit again
    session.stop();
    EXPECT_EQ(session.eventCount(), 1u);
    session.clear();
}

TEST(PhaseProfiler, AccumulatesScopes)
{
    so::PhaseProfiler profiler;
    {
        auto scope = profiler.loss();
        volatile int sink = 0;
        for (int i = 0; i < 1000; ++i)
            sink = sink + i;
        (void)sink;
    }
    {
        auto scope = profiler.sampling();
    }
    EXPECT_GE(profiler.lossSeconds, 0.0);
    EXPECT_GT(profiler.lossSeconds + profiler.samplingSeconds, 0.0);
    EXPECT_GE(profiler.total(), profiler.lossSeconds);
}

TEST(PhaseProfiler, ScopesEmitSpansWhenTracing)
{
    so::TraceSession& session = so::TraceSession::instance();
    session.start();
    so::PhaseProfiler profiler;
    {
        auto scope = profiler.loss();
    }
    {
        auto scope = profiler.gradient();
    }
    session.stop();
    EXPECT_EQ(session.eventCount(), 2u);
    session.clear();
}

TEST(Disabled, FastPathAllocatesNothing)
{
    // With tracing off and the component below threshold, spans, counter
    // updates, and suppressed log calls must not touch the heap.
    ASSERT_FALSE(so::traceEnabled());
    so::setGlobalLogLevel(so::Level::Warn);

    static so::Logger log("obs_test_fastpath"); // registered up front
    so::Counter& counter = so::counter("test.fastpath.counter");
    so::Gauge& gauge = so::gauge("test.fastpath.gauge");
    so::Histogram& hist = so::histogram("test.fastpath.hist", {1.0});

    const std::uint64_t before =
        gAllocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        so::Span span("hot", "test");
        counter.add(1);
        gauge.set(static_cast<double>(i));
        hist.observe(0.5);
        log.debug("suppressed %d", i);
        so::traceCounter("hot.counter", 1.0);
    }
    const std::uint64_t after =
        gAllocations.load(std::memory_order_relaxed);
    EXPECT_EQ(before, after);
}
