/**
 * @file
 * Per-op kernel profiler tests: disabled-by-default dispatch, stride
 * sampling, kernel attribution whose self times sum to the recorded
 * phase totals, folded/flamegraph export, the schema-v2 report round
 * trip, perf-counter graceful degradation, and bit-identity between the
 * bare and dispatching replay loops.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "autodiff/program.hpp"
#include "autodiff/tape.hpp"
#include "obs/perf_counters.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "tensor/simd.hpp"
#include "util/json.hpp"

namespace ad = smoothe::ad;
namespace obs = smoothe::obs;
namespace util = smoothe::util;

namespace {

/** Small fixed program: loss = sumAll((a * b) * -2 + 1). */
struct SmallProgram
{
    ad::Param a;
    ad::Param b;
    ad::Program program;

    SmallProgram() : a(initTensor(3)), b(initTensor(7)), program(make())
    {}

    static ad::Tensor
    initTensor(unsigned salt)
    {
        ad::Tensor t(4, 16);
        for (std::size_t i = 0; i < t.size(); ++i)
            t.data()[i] =
                0.01f * static_cast<float>((i * salt) % 29) - 0.1f;
        return t;
    }

    ad::Program
    make()
    {
        ad::Tape tape;
        const ad::VarId mul = tape.mul(tape.leaf(&a), tape.leaf(&b));
        const ad::VarId loss = tape.sumAll(
            tape.addScalar(tape.scale(mul, -2.0f), 1.0f));
        return ad::Program(std::move(tape), loss);
    }
};

/** Every test starts and ends with a disabled, empty profiler (the
 *  Profiler is process-wide state). The SIMD level is pinned to scalar
 *  so kernel-slot names stay unsuffixed ("forward.mul", never
 *  "forward.mul@avx2") regardless of the host CPU. */
class ProfilerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        savedLevel_ = smoothe::tensor::simd::activeLevel();
        smoothe::tensor::simd::setLevel(
            smoothe::tensor::simd::Level::Scalar);
        obs::Profiler::instance().disable();
        obs::Profiler::instance().reset();
    }
    void
    TearDown() override
    {
        smoothe::tensor::simd::setLevel(savedLevel_);
        obs::Profiler::instance().disable();
        obs::Profiler::instance().reset();
    }

  private:
    smoothe::tensor::simd::Level savedLevel_ =
        smoothe::tensor::simd::Level::Scalar;
};

} // namespace

TEST_F(ProfilerTest, DisabledByDefaultRecordsNothing)
{
    EXPECT_FALSE(obs::profilerEnabled());
    SmallProgram fixture;
    for (int i = 0; i < 3; ++i) {
        fixture.a.zeroGrad();
        fixture.b.zeroGrad();
        fixture.program.forward();
        fixture.program.backward();
    }
    obs::Profiler& prof = obs::Profiler::instance();
    EXPECT_FALSE(prof.hasData());
    EXPECT_TRUE(prof.snapshot().empty());
    EXPECT_EQ(prof.replays(obs::Profiler::Phase::Forward), 0u);
}

TEST_F(ProfilerTest, EnabledAttributionSumsToPhaseTotals)
{
    obs::Profiler& prof = obs::Profiler::instance();
    prof.enable();
    SmallProgram fixture;
    const int replays = 4;
    for (int i = 0; i < replays; ++i) {
        fixture.a.zeroGrad();
        fixture.b.zeroGrad();
        fixture.program.forward();
        fixture.program.backward();
    }
    prof.disable();

    EXPECT_TRUE(prof.hasData());
    EXPECT_EQ(prof.replays(obs::Profiler::Phase::Forward),
              static_cast<std::uint64_t>(replays));
    EXPECT_EQ(prof.sampledReplays(obs::Profiler::Phase::Forward),
              static_cast<std::uint64_t>(replays));
    EXPECT_EQ(prof.sampledReplays(obs::Profiler::Phase::Backward),
              static_cast<std::uint64_t>(replays));

    const std::vector<obs::KernelStats> kernels = prof.snapshot();
    ASSERT_FALSE(kernels.empty());
    double selfSum = 0.0;
    bool sawMul = false;
    for (const obs::KernelStats& k : kernels) {
        EXPECT_GT(k.calls, 0u);
        selfSum += k.selfSeconds;
        sawMul = sawMul || k.name == "forward.mul";
        if (k.name == "forward.mul") {
            EXPECT_EQ(k.calls, static_cast<std::uint64_t>(replays));
            EXPECT_GT(k.flops, 0u);
            EXPECT_GT(k.bytes, 0u);
            EXPECT_GT(k.intensity(), 0.0);
        }
    }
    EXPECT_TRUE(sawMul);

    // Boundary-to-boundary sampling makes kernel self times sum to the
    // phase totals by construction (modulo integer-nanosecond
    // truncation per op); the acceptance bar is >= 90%.
    const double phaseTotal =
        prof.phaseSeconds(obs::Profiler::Phase::Forward) +
        prof.phaseSeconds(obs::Profiler::Phase::Backward);
    ASSERT_GT(phaseTotal, 0.0);
    EXPECT_GE(selfSum, 0.9 * phaseTotal);
    EXPECT_LE(selfSum, 1.000001 * phaseTotal);
}

TEST_F(ProfilerTest, StrideSamplesEveryNthReplay)
{
    obs::Profiler& prof = obs::Profiler::instance();
    prof.enable(3);
    EXPECT_EQ(prof.stride(), 3u);
    SmallProgram fixture;
    for (int i = 0; i < 9; ++i)
        fixture.program.forward();
    prof.disable();
    EXPECT_EQ(prof.replays(obs::Profiler::Phase::Forward), 9u);
    EXPECT_EQ(prof.sampledReplays(obs::Profiler::Phase::Forward), 3u);
    for (const obs::KernelStats& k : prof.snapshot()) {
        if (k.name == "forward.mul") {
            EXPECT_EQ(k.calls, 3u);
        }
    }
}

TEST_F(ProfilerTest, FoldedExportIsOneLinePerKernel)
{
    obs::Profiler& prof = obs::Profiler::instance();
    prof.enable();
    SmallProgram fixture;
    fixture.program.forward();
    fixture.program.backward();
    prof.disable();

    const std::string folded = prof.toFolded();
    ASSERT_FALSE(folded.empty());
    std::size_t lines = 0;
    std::size_t start = 0;
    while (start < folded.size()) {
        std::size_t end = folded.find('\n', start);
        ASSERT_NE(end, std::string::npos); // newline-terminated
        const std::string line = folded.substr(start, end - start);
        EXPECT_EQ(line.rfind("smoothe;", 0), 0u) << line;
        const std::size_t space = line.find(' ');
        ASSERT_NE(space, std::string::npos) << line;
        // The sample value is a non-negative integer (microseconds).
        for (std::size_t i = space + 1; i < line.size(); ++i)
            EXPECT_TRUE(line[i] >= '0' && line[i] <= '9') << line;
        ++lines;
        start = end + 1;
    }
    EXPECT_EQ(lines, prof.snapshot().size());
}

TEST_F(ProfilerTest, ReportProfileSectionRoundTrips)
{
    obs::Profiler& prof = obs::Profiler::instance();
    prof.enable();
    SmallProgram fixture;
    fixture.program.forward();
    fixture.program.backward();
    prof.disable();

    obs::Report report("test_profiler");
    report.measurement("dummy").add(1.0);

    // v1-shaped document (no profile section) must stay valid.
    std::string error;
    EXPECT_TRUE(obs::validateReportJson(report.toJson(), &error))
        << error;

    report.setProfile(prof.toJson());
    util::Json doc = report.toJson();
    EXPECT_TRUE(obs::validateReportJson(doc, &error)) << error;
    EXPECT_EQ(obs::reportSchemaVersion(doc), 2);
    const util::Json* profile = doc.find("profile");
    ASSERT_NE(profile, nullptr);
    const util::Json* kernels = profile->find("kernels");
    ASSERT_NE(kernels, nullptr);
    EXPECT_GT(kernels->asObject().size(), 0u);

    // Malformed profile sections are rejected, not silently accepted.
    util::Json bad = report.toJson();
    bad.set("profile", util::Json("not an object"));
    EXPECT_FALSE(obs::validateReportJson(bad, &error));

    // A null profile removes the section again.
    report.setProfile(util::Json());
    EXPECT_EQ(report.toJson().find("profile"), nullptr);
}

TEST_F(ProfilerTest, PerfCountersDegradeGracefully)
{
    obs::PerfCounters counters;
    EXPECT_FALSE(counters.status().empty());
    if (counters.available()) {
        const obs::PerfSample first = counters.read();
        volatile double sink = 0.0;
        for (int i = 0; i < 10000; ++i)
            sink = sink + static_cast<double>(i);
        const obs::PerfSample second = counters.read();
        EXPECT_GE(second.cycles, first.cycles);
    } else {
        // No perf access (common in containers): reads are all-zero
        // and the status explains why instead of crashing.
        const obs::PerfSample sample = counters.read();
        EXPECT_EQ(sample.cycles, 0u);
        EXPECT_EQ(sample.instructions, 0u);
    }
    // The profiler-level probe mirrors the same verdict.
    obs::Profiler::instance().enable();
    EXPECT_FALSE(obs::Profiler::instance().perfStatus().empty());
    obs::Profiler::instance().disable();
}

TEST_F(ProfilerTest, ProfiledReplayIsBitIdenticalToBare)
{
    SmallProgram profiled;
    SmallProgram bare;

    obs::Profiler::instance().enable();
    profiled.a.zeroGrad();
    profiled.b.zeroGrad();
    profiled.program.forward();
    profiled.program.backward();
    obs::Profiler::instance().disable();

    bare.a.zeroGrad();
    bare.b.zeroGrad();
    bare.program.forwardBare();
    bare.program.backwardBare();

    const ad::Tensor& lossProfiled =
        profiled.program.value(profiled.program.root());
    const ad::Tensor& lossBare = bare.program.value(bare.program.root());
    EXPECT_EQ(std::memcmp(lossProfiled.data(), lossBare.data(),
                          sizeof(float)),
              0);
    ASSERT_EQ(profiled.a.grad.size(), bare.a.grad.size());
    EXPECT_EQ(std::memcmp(profiled.a.grad.data(), bare.a.grad.data(),
                          bare.a.grad.size() * sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(profiled.b.grad.data(), bare.b.grad.data(),
                          bare.b.grad.size() * sizeof(float)),
              0);
}
