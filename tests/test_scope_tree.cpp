/**
 * @file
 * Tests for the lint scope micro-parser (src/lint/scope_tree.hpp).
 *
 * Two layers: API assertions (scopeAt / findLocal / enclosingFunction /
 * loopDepth / captures) on small snippets, and golden dumps under
 * tests/golden/scope/ that pin the full tree shape on adversarial
 * inputs — nested lambdas, templates with >>, operator overloads,
 * constructor init lists, if constexpr, unbalanced macro braces.
 *
 * Regenerate the goldens after an intentional parser change with
 *   SMOOTHE_UPDATE_GOLDEN=1 ctest -R test_scope_tree
 * and review the diff: the dump IS the parser's contract.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "lint/lexer.hpp"
#include "lint/scope_tree.hpp"
#include "util/json.hpp"

namespace lint = smoothe::lint;
namespace util = smoothe::util;

#ifndef SMOOTHE_GOLDEN_DIR
#define SMOOTHE_GOLDEN_DIR "tests/golden"
#endif

namespace {

lint::ScopeTree
parse(const std::string& source)
{
    return lint::buildScopeTree(lint::lex(source));
}

/** Finds the first scope with `kind` and, when given, `name`. */
int
findScope(const lint::ScopeTree& tree, lint::ScopeKind kind,
          const std::string& name = "")
{
    for (std::size_t s = 0; s < tree.scopes.size(); ++s) {
        if (tree.scopes[s].kind == kind &&
            (name.empty() || tree.scopes[s].name == name))
            return static_cast<int>(s);
    }
    return -1;
}

void
expectGolden(const std::string& name, const std::string& source)
{
    const std::string path =
        std::string(SMOOTHE_GOLDEN_DIR) + "/scope/" + name + ".txt";
    const std::string dump = parse(source).dump();
    if (std::getenv("SMOOTHE_UPDATE_GOLDEN") != nullptr) {
        ASSERT_TRUE(util::writeFile(path, dump)) << path;
        return;
    }
    const auto expected = util::readFile(path);
    ASSERT_TRUE(expected) << "missing golden " << path
                          << " — regenerate with SMOOTHE_UPDATE_GOLDEN=1";
    EXPECT_EQ(*expected, dump)
        << "scope dump drifted from " << path
        << " — review and regenerate with SMOOTHE_UPDATE_GOLDEN=1";
}

// ------------------------------------------------------------------ API

TEST(ScopeTree, RootSpansTheWholeFile)
{
    const lint::ScopeTree tree = parse("int a;\nint b;\n");
    ASSERT_FALSE(tree.scopes.empty());
    EXPECT_EQ(tree.root().kind, lint::ScopeKind::File);
    EXPECT_EQ(tree.root().parent, -1);
    EXPECT_EQ(tree.scopeAt(0), 0);
}

TEST(ScopeTree, FunctionsRecordParametersAsLocals)
{
    const lint::ScopeTree tree =
        parse("void f(const float* x, std::size_t n) {\n"
              "  double acc = 0.0;\n"
              "}\n");
    const int fn = findScope(tree, lint::ScopeKind::Function, "f");
    ASSERT_GE(fn, 0);
    const lint::Declaration* x = tree.findLocal(fn, "x");
    ASSERT_NE(x, nullptr);
    EXPECT_TRUE(x->isParameter);
    EXPECT_NE(x->typeText.find("float"), std::string::npos);
    EXPECT_NE(x->typeText.find("*"), std::string::npos);
    const lint::Declaration* acc = tree.findLocal(fn, "acc");
    ASSERT_NE(acc, nullptr);
    EXPECT_FALSE(acc->isParameter);
    EXPECT_EQ(acc->typeText, "double");
}

TEST(ScopeTree, FindLocalPrefersTheInnermostShadower)
{
    const lint::ScopeTree tree = parse("void f() {\n"
                                       "  int v = 1;\n"
                                       "  {\n"
                                       "    double v = 2.0;\n"
                                       "    use(v);\n"
                                       "  }\n"
                                       "}\n");
    const int block = findScope(tree, lint::ScopeKind::Block);
    ASSERT_GE(block, 0);
    const lint::Declaration* inner = tree.findLocal(block, "v");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->typeText, "double");
    // From the function scope the outer declaration wins.
    const int fn = findScope(tree, lint::ScopeKind::Function, "f");
    const lint::Declaration* outer = tree.findLocal(fn, "v");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(outer->typeText, "int");
    EXPECT_EQ(tree.findLocal(block, "unknown"), nullptr);
}

TEST(ScopeTree, LoopDepthCountsNesting)
{
    const lint::ScopeTree tree =
        parse("void f() {\n"
              "  for (int i = 0; i < n; ++i) {\n"
              "    while (more()) {\n"
              "      step();\n"
              "    }\n"
              "  }\n"
              "}\n");
    int seen = 0;
    for (const lint::Scope& scope : tree.scopes) {
        if (scope.kind != lint::ScopeKind::Loop)
            continue;
        ++seen;
        EXPECT_EQ(scope.loopDepth, seen); // outer 1, inner 2
    }
    EXPECT_EQ(seen, 2);
    const int fn = findScope(tree, lint::ScopeKind::Function, "f");
    EXPECT_EQ(tree.scopes[fn].loopDepth, 0);
}

TEST(ScopeTree, LambdaCapturesAreParsed)
{
    const lint::ScopeTree tree =
        parse("void f() {\n"
              "  int a = 0; int b = 0;\n"
              "  auto g = [&, b, c = a + 1](int arg) { use(arg); };\n"
              "}\n");
    const int lambda = findScope(tree, lint::ScopeKind::Lambda);
    ASSERT_GE(lambda, 0);
    const auto& captures = tree.scopes[lambda].captures;
    ASSERT_EQ(captures.size(), 3u);
    EXPECT_TRUE(captures[0].isDefault);
    EXPECT_TRUE(captures[0].byRef);
    EXPECT_EQ(captures[1].name, "b");
    EXPECT_FALSE(captures[1].byRef);
    EXPECT_EQ(captures[2].name, "c");
    EXPECT_TRUE(captures[2].isInit);
    const lint::Declaration* arg = tree.findLocal(lambda, "arg");
    ASSERT_NE(arg, nullptr);
    EXPECT_TRUE(arg->isParameter);
}

TEST(ScopeTree, EnclosingFunctionWalksPastBlocksAndLoops)
{
    const lint::ScopeTree tree = parse("void f() {\n"
                                       "  for (;;) {\n"
                                       "    if (x) {\n"
                                       "      auto g = [&] { body(); };\n"
                                       "    }\n"
                                       "  }\n"
                                       "}\n");
    const int lambda = findScope(tree, lint::ScopeKind::Lambda);
    ASSERT_GE(lambda, 0);
    // From the lambda itself: the lambda.
    EXPECT_EQ(tree.enclosingFunction(lambda), lambda);
    // From the if-block around it: the function.
    const int fn = findScope(tree, lint::ScopeKind::Function, "f");
    const int block = tree.scopes[lambda].parent;
    EXPECT_EQ(tree.enclosingFunction(block), fn);
    EXPECT_EQ(tree.enclosingFunction(0), -1);
}

TEST(ScopeTree, MethodNamesKeepTheirQualification)
{
    const lint::ScopeTree tree =
        parse("void CsrMatrix::spmv(const float* x, float* y) {\n"
              "  body(x, y);\n"
              "}\n");
    EXPECT_GE(findScope(tree, lint::ScopeKind::Function, "CsrMatrix::spmv"),
              0);
}

TEST(ScopeTree, SubscriptsAndAttributesAreNotLambdas)
{
    const lint::ScopeTree tree =
        parse("void f(std::vector<int>& v) {\n"
              "  v[0] = 1;\n"
              "  [[maybe_unused]] int y = v[1];\n"
              "}\n");
    EXPECT_EQ(findScope(tree, lint::ScopeKind::Lambda), -1);
}

TEST(ScopeTree, BracedInitsInLoopHeadersDoNotStealTheBody)
{
    const lint::ScopeTree tree =
        parse("void f() {\n"
              "  while (acc > T{100}) {\n"
              "    int inner = 0;\n"
              "  }\n"
              "  for (int x : std::vector<int>{1, 2}) {\n"
              "    use(x);\n"
              "  }\n"
              "}\n");
    int loops = 0;
    for (const lint::Scope& scope : tree.scopes) {
        if (scope.kind != lint::ScopeKind::Loop)
            continue;
        ++loops;
        // Each Loop scope must span its real body, not the braced init.
        EXPECT_LT(scope.beginLine, scope.endLine)
            << "loop at line " << scope.beginLine;
    }
    EXPECT_EQ(loops, 2);
}

TEST(ScopeTree, UnbalancedBracesClampInsteadOfFailing)
{
    // A macro that opens a scope the parser never sees closed.
    const lint::ScopeTree truncated =
        parse("void f() {\n  int a = 0;\n"); // missing }
    const int fn = findScope(truncated, lint::ScopeKind::Function, "f");
    ASSERT_GE(fn, 0);
    EXPECT_GE(truncated.scopes[fn].endTok, truncated.scopes[fn].beginTok);
    // A stray close brace must not underflow the scope stack.
    const lint::ScopeTree stray = parse("}\n}\nint a;\nvoid g() { b(); }\n");
    EXPECT_GE(findScope(stray, lint::ScopeKind::Function, "g"), 0);
}

// --------------------------------------------------------------- golden

TEST(ScopeGolden, NestedLambdasAndCaptures)
{
    expectGolden("nested_lambdas",
                 "namespace smoothe {\n"
                 "void drive(util::ThreadPool& pool) {\n"
                 "  int outer = 0;\n"
                 "  pool.parallelFor(0, 8, [&, seed = 7](std::size_t i) {\n"
                 "    auto inner = [=](int j) mutable { return j + seed; };\n"
                 "    use(inner(static_cast<int>(i)), outer);\n"
                 "  });\n"
                 "}\n"
                 "} // namespace smoothe\n");
}

TEST(ScopeGolden, TemplatesAndDoubleCloseAngle)
{
    expectGolden("templates",
                 "template <typename T, typename U>\n"
                 "std::vector<std::pair<T, U>> zip(const std::vector<T>& a,\n"
                 "                                 const std::vector<U>& b)\n"
                 "{\n"
                 "  std::vector<std::pair<T, U>> out;\n"
                 "  for (std::size_t i = 0; i < a.size(); ++i) {\n"
                 "    out.emplace_back(a[i], b[i]);\n"
                 "  }\n"
                 "  return out;\n"
                 "}\n"
                 "template <class T>\n"
                 "struct Holder {\n"
                 "  T value;\n"
                 "  T get() const { return value; }\n"
                 "};\n");
}

TEST(ScopeGolden, OperatorsAndDestructors)
{
    expectGolden("operators",
                 "struct Fixture {\n"
                 "  ~Fixture() { release(); }\n"
                 "  bool operator==(const Fixture& other) const {\n"
                 "    return id == other.id;\n"
                 "  }\n"
                 "  int operator()(int x) { return x + id; }\n"
                 "  int id = 0;\n"
                 "};\n"
                 "Fixture operator+(const Fixture& a, const Fixture& b)\n"
                 "{\n"
                 "  Fixture out;\n"
                 "  out.id = a.id + b.id;\n"
                 "  return out;\n"
                 "}\n");
}

TEST(ScopeGolden, ConstructorInitLists)
{
    expectGolden("ctor_init",
                 "class Arena {\n"
                 " public:\n"
                 "  Arena(std::size_t budget, int flags)\n"
                 "      : budget_(budget), flags_{flags}, peak_{0} {\n"
                 "    validate();\n"
                 "  }\n"
                 " private:\n"
                 "  std::size_t budget_;\n"
                 "  int flags_;\n"
                 "  std::size_t peak_;\n"
                 "};\n"
                 "Arena::Arena(std::size_t budget)\n"
                 "    : budget_(budget), flags_{0}, peak_{0} {\n"
                 "  validate();\n"
                 "}\n");
}

TEST(ScopeGolden, IfConstexprAndLoopKinds)
{
    expectGolden("if_constexpr",
                 "template <typename T>\n"
                 "T reduce(const T* data, std::size_t n)\n"
                 "{\n"
                 "  T acc{};\n"
                 "  if constexpr (std::is_floating_point_v<T>) {\n"
                 "    for (std::size_t i = 0; i < n; ++i) {\n"
                 "      acc += data[i];\n"
                 "    }\n"
                 "  } else {\n"
                 "    std::size_t i = 0;\n"
                 "    do {\n"
                 "      acc += data[i];\n"
                 "    } while (++i < n);\n"
                 "  }\n"
                 "  while (acc > T{100}) {\n"
                 "    acc /= T{2};\n"
                 "  }\n"
                 "  return acc;\n"
                 "}\n");
}

TEST(ScopeGolden, AdversarialBracesInLiteralsAndMacros)
{
    expectGolden("adversarial_braces",
                 "const char* kJson = R\"({\"key\": {\"nested\": 1}})\";\n"
                 "const char kOpen = '{';\n"
                 "#define WRAP(x) { x; }\n"
                 "void f()\n"
                 "{\n"
                 "  // braces in comments: } } {\n"
                 "  emit(\"{\");\n"
                 "  WRAP(int y = 2)\n"
                 "}\n");
}

} // namespace
