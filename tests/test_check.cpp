/**
 * @file
 * Tests for the contract layer (src/check) and the deep validators:
 * each validator must accept healthy structures AND provably reject
 * deliberately corrupted ones, reached through test-only friend peers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "autodiff/tape.hpp"
#include "check/contracts.hpp"
#include "datasets/generators.hpp"
#include "egraph/egraph.hpp"
#include "egraph/serialize.hpp"
#include "eqsat/mut_egraph.hpp"
#include "extraction/bottom_up.hpp"
#include "extraction/validate.hpp"
#include "obs/check_telemetry.hpp"
#include "obs/metrics.hpp"

namespace check = smoothe::check;
namespace eg = smoothe::eg;
namespace ex = smoothe::extract;
namespace ad = smoothe::ad;
namespace ds = smoothe::datasets;

namespace smoothe::eg {

/** Backdoor used to corrupt EGraph state (friend of EGraph). */
struct EGraphTestPeer
{
    static void misfileNode(EGraph& g, NodeId nid, ClassId wrong)
    {
        g.nodeClass_[nid] = wrong;
    }
    static void poisonCost(EGraph& g, NodeId nid)
    {
        g.nodes_[nid].cost = std::numeric_limits<double>::quiet_NaN();
    }
    static void dropFromClassList(EGraph& g, ClassId cls)
    {
        g.classNodes_[cls].pop_back();
    }
    static void corruptRoot(EGraph& g) { g.root_ = 0xdeadbeef; }
    static void tamperParents(EGraph& g, ClassId cls)
    {
        g.classParents_[cls].push_back(0);
    }
};

} // namespace smoothe::eg

namespace smoothe::ad {

/** Backdoor used to corrupt Tape state (friend of Tape). */
struct TapeTestPeer
{
    static void selfReference(Tape& tape, VarId id)
    {
        tape.nodes_[static_cast<std::size_t>(id)].in0 = id;
    }
    static void poisonValue(Tape& tape, VarId id)
    {
        tape.nodes_[static_cast<std::size_t>(id)].value.at(0, 0) =
            std::numeric_limits<float>::quiet_NaN();
    }
    static void corruptShape(Tape& tape, VarId id)
    {
        tape.nodes_[static_cast<std::size_t>(id)].value = Tensor(1, 17);
    }
};

} // namespace smoothe::ad

namespace smoothe::eqsat {

/** Backdoor used to corrupt MutEGraph state (friend of MutEGraph). */
struct MutEGraphTestPeer
{
    static void dropHashconsEntry(MutEGraph& g)
    {
        g.hashcons_.erase(g.hashcons_.begin());
    }
    static void corruptParentPointer(MutEGraph& g)
    {
        g.parent_[0] = static_cast<Id>(g.parent_.size() + 100);
    }
    static void emptyCanonicalClass(MutEGraph& g)
    {
        for (Id id = 0; id < g.parent_.size(); ++id) {
            if (g.find(id) == id && !g.classes_[id].nodes.empty()) {
                g.classes_[id].nodes.clear();
                return;
            }
        }
    }
};

} // namespace smoothe::eqsat

namespace {

using check::ContractViolation;
using check::FailureMode;
using check::ScopedFailureMode;

// ---------------------------------------------------------------- macros

TEST(Contracts, PassingChecksAreSilent)
{
    ScopedFailureMode mode(FailureMode::Throw);
    EXPECT_NO_THROW(SMOOTHE_CHECK(1 + 1 == 2));
    EXPECT_NO_THROW(SMOOTHE_ASSERT(true, "never shown %d", 7));
    EXPECT_NO_THROW(SMOOTHE_CHECK_OK(std::optional<std::string>()));
}

TEST(Contracts, FailedCheckThrowsWithFormattedMessage)
{
    ScopedFailureMode mode(FailureMode::Throw);
    try {
        SMOOTHE_CHECK(false, "value was %d", 42);
        FAIL() << "SMOOTHE_CHECK(false) did not throw";
    } catch (const ContractViolation& violation) {
        EXPECT_NE(std::string(violation.what()).find("value was 42"),
                  std::string::npos)
            << violation.what();
        EXPECT_EQ(violation.expression(), "false");
        EXPECT_EQ(violation.line() > 0, true);
    }
}

TEST(Contracts, FailedAssertThrows)
{
    ScopedFailureMode mode(FailureMode::Throw);
    EXPECT_THROW(SMOOTHE_ASSERT(false), ContractViolation);
}

TEST(Contracts, ValidatorAdapterCarriesTheMessage)
{
    ScopedFailureMode mode(FailureMode::Throw);
    std::optional<std::string> problem("index 3 out of range");
    try {
        SMOOTHE_CHECK_OK(problem);
        FAIL() << "SMOOTHE_CHECK_OK did not throw";
    } catch (const ContractViolation& violation) {
        EXPECT_NE(
            std::string(violation.what()).find("index 3 out of range"),
            std::string::npos);
    }
}

TEST(Contracts, LogModeContinuesPastFailedCheck)
{
    ScopedFailureMode mode(FailureMode::Log);
    bool reached = false;
    SMOOTHE_CHECK(false, "recoverable");
    reached = true;
    EXPECT_TRUE(reached);
}

TEST(Contracts, TelemetryObserverCountsFailures)
{
    smoothe::obs::installCheckTelemetry();
    ScopedFailureMode mode(FailureMode::Log);
    const auto before = smoothe::obs::counter("check.failures").get();
    const auto beforeTier =
        smoothe::obs::counter("check.failures.check").get();
    SMOOTHE_CHECK(false, "counted");
    EXPECT_EQ(smoothe::obs::counter("check.failures").get(), before + 1);
    EXPECT_EQ(smoothe::obs::counter("check.failures.check").get(),
              beforeTier + 1);
}

#if SMOOTHE_INVARIANTS_ENABLED
TEST(Contracts, DcheckActiveInInvariantBuilds)
{
    ScopedFailureMode mode(FailureMode::Throw);
    EXPECT_THROW(SMOOTHE_DCHECK(false), ContractViolation);
    EXPECT_THROW(SMOOTHE_DCHECK_OK(std::optional<std::string>("bad")),
                 ContractViolation);
}
#else
TEST(Contracts, DcheckCompiledOutInReleaseBuilds)
{
    // The condition must not even be evaluated.
    bool evaluated = false;
    SMOOTHE_DCHECK([&] {
        evaluated = true;
        return false;
    }());
    EXPECT_FALSE(evaluated);
}
#endif

// ------------------------------------------------- EGraph::checkInvariants

TEST(EGraphInvariants, HealthyGraphPasses)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    EXPECT_EQ(g.checkInvariants(), std::nullopt);
}

TEST(EGraphInvariants, DetectsMisfiledNode)
{
    eg::EGraph g = ds::paperExampleEGraph();
    const auto wrong = static_cast<eg::ClassId>(
        (g.classOf(0) + 1) % g.numClasses());
    eg::EGraphTestPeer::misfileNode(g, 0, wrong);
    EXPECT_NE(g.checkInvariants(), std::nullopt);
}

TEST(EGraphInvariants, DetectsNonFiniteCost)
{
    eg::EGraph g = ds::paperExampleEGraph();
    eg::EGraphTestPeer::poisonCost(g, 2);
    const auto problem = g.checkInvariants();
    ASSERT_NE(problem, std::nullopt);
    EXPECT_NE(problem->find("finite"), std::string::npos) << *problem;
}

TEST(EGraphInvariants, DetectsMembershipHole)
{
    eg::EGraph g = ds::paperExampleEGraph();
    eg::EGraphTestPeer::dropFromClassList(g, g.root());
    EXPECT_NE(g.checkInvariants(), std::nullopt);
}

TEST(EGraphInvariants, DetectsOutOfRangeRoot)
{
    eg::EGraph g = ds::paperExampleEGraph();
    eg::EGraphTestPeer::corruptRoot(g);
    const auto problem = g.checkInvariants();
    ASSERT_NE(problem, std::nullopt);
    EXPECT_NE(problem->find("root"), std::string::npos) << *problem;
}

TEST(EGraphInvariants, DetectsStaleParentIndex)
{
    eg::EGraph g = ds::paperExampleEGraph();
    eg::EGraphTestPeer::tamperParents(g, g.root());
    EXPECT_NE(g.checkInvariants(), std::nullopt);
}

// --------------------------------------------------- Tape::checkInvariants

TEST(TapeInvariants, HealthyTapePasses)
{
    ad::Tape tape;
    ad::Param weights(ad::Tensor(2, 3, 0.5f));
    const ad::VarId a = tape.leaf(&weights);
    const ad::VarId b = tape.scale(a, 2.0f);
    const ad::VarId loss = tape.sumAll(tape.mul(a, b));
    EXPECT_EQ(tape.checkInvariants(), std::nullopt);
    EXPECT_EQ(tape.checkInvariants(/*screen_values=*/true), std::nullopt);
    tape.backward(loss);
}

TEST(TapeInvariants, DetectsTopologicalViolation)
{
    ad::Tape tape;
    ad::Param weights(ad::Tensor(1, 2, 1.0f));
    const ad::VarId a = tape.leaf(&weights);
    const ad::VarId b = tape.scale(a, 2.0f);
    ad::TapeTestPeer::selfReference(tape, b);
    const auto problem = tape.checkInvariants();
    ASSERT_NE(problem, std::nullopt);
    EXPECT_NE(problem->find("precede"), std::string::npos) << *problem;
}

TEST(TapeInvariants, ScreensNaNForwardValues)
{
    ad::Tape tape;
    ad::Param weights(ad::Tensor(1, 2, 1.0f));
    const ad::VarId a = tape.leaf(&weights);
    ad::TapeTestPeer::poisonValue(tape, a);
    EXPECT_EQ(tape.checkInvariants(/*screen_values=*/false), std::nullopt);
    const auto problem = tape.checkInvariants(/*screen_values=*/true);
    ASSERT_NE(problem, std::nullopt);
}

TEST(TapeInvariants, DetectsShapeMismatch)
{
    ad::Tape tape;
    ad::Param weights(ad::Tensor(2, 2, 1.0f));
    const ad::VarId a = tape.leaf(&weights);
    const ad::VarId b = tape.relu(a);
    ad::TapeTestPeer::corruptShape(tape, b);
    EXPECT_NE(tape.checkInvariants(), std::nullopt);
}

// ----------------------------------------------- MutEGraph::checkInvariants

namespace eqs = smoothe::eqsat;

eqs::MutEGraph
smallSaturatedGraph()
{
    eqs::MutEGraph g;
    const eqs::Id x = g.add("x", {});
    const eqs::Id y = g.add("y", {});
    const eqs::Id sum = g.add("+", {x, y});
    g.add("*", {sum, x});
    g.rebuild();
    return g;
}

TEST(MutEGraphInvariants, HealthyGraphPasses)
{
    eqs::MutEGraph g = smallSaturatedGraph();
    EXPECT_EQ(g.checkInvariants(), std::nullopt);
}

TEST(MutEGraphInvariants, DetectsMissingHashconsEntry)
{
    eqs::MutEGraph g = smallSaturatedGraph();
    eqs::MutEGraphTestPeer::dropHashconsEntry(g);
    EXPECT_NE(g.checkInvariants(), std::nullopt);
}

TEST(MutEGraphInvariants, DetectsDanglingUnionFindPointer)
{
    eqs::MutEGraph g = smallSaturatedGraph();
    eqs::MutEGraphTestPeer::corruptParentPointer(g);
    const auto problem = g.checkInvariants();
    ASSERT_NE(problem, std::nullopt);
    EXPECT_NE(problem->find("out of range"), std::string::npos) << *problem;
}

TEST(MutEGraphInvariants, DetectsEmptiedClass)
{
    eqs::MutEGraph g = smallSaturatedGraph();
    eqs::MutEGraphTestPeer::emptyCanonicalClass(g);
    EXPECT_NE(g.checkInvariants(), std::nullopt);
}

// --------------------------------------------------------- validateResult

/** Runs heuristic extraction and returns the (valid) result. */
ex::ExtractionResult
validResult(const eg::EGraph& g)
{
    ex::BottomUpExtractor heuristic;
    ex::ExtractionResult result = heuristic.extract(g, {});
    EXPECT_TRUE(result.ok());
    return result;
}

TEST(ValidateResult, AcceptsValidExtraction)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    const auto result = validResult(g);
    const auto verdict = ex::validateResult(g, result);
    EXPECT_TRUE(verdict.ok()) << verdict.message;
}

TEST(ValidateResult, RejectsCompletenessHole)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    auto result = validResult(g);
    // Un-choose a needed child class: the root's chosen node must have at
    // least one child in this graph.
    const eg::NodeId rootChoice = result.selection.choice[g.root()];
    ASSERT_FALSE(g.node(rootChoice).children.empty());
    result.selection.choice[g.node(rootChoice).children.front()] =
        eg::kNoNode;
    const auto verdict = ex::validateResult(g, result);
    ASSERT_FALSE(verdict.ok());
    EXPECT_EQ(verdict.violation, ex::Violation::MissingChild);
}

TEST(ValidateResult, RejectsCycle)
{
    // root class 0 { r(1) }, class 1 { a(0) cyclic, b leaf }.
    eg::EGraph g;
    const eg::ClassId rootCls = g.addClass();
    const eg::ClassId childCls = g.addClass();
    g.addNode(rootCls, "r", {childCls}, 1.0);
    const eg::NodeId cyclicNode = g.addNode(childCls, "a", {rootCls}, 1.0);
    g.addNode(childCls, "b", {}, 1.0);
    g.setRoot(rootCls);
    ASSERT_EQ(g.finalize(), std::nullopt);

    ex::ExtractionResult result;
    result.selection = ex::Selection::empty(g);
    result.selection.choice[rootCls] = 0;
    result.selection.choice[childCls] = cyclicNode;
    result.status = ex::SolveStatus::Feasible;
    result.cost = 2.0;
    const auto verdict = ex::validateResult(g, result);
    ASSERT_FALSE(verdict.ok());
    EXPECT_EQ(verdict.violation, ex::Violation::Cyclic);
}

TEST(ValidateResult, RejectsCostMismatch)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    auto result = validResult(g);
    result.cost += 1.0;
    const auto verdict = ex::validateResult(g, result);
    ASSERT_FALSE(verdict.ok());
    EXPECT_EQ(verdict.violation, ex::Violation::CostMismatch);
}

TEST(ValidateResult, RejectsLyingFailureStatus)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    auto result = validResult(g);
    result.status = ex::SolveStatus::Failed;
    const auto verdict = ex::validateResult(g, result);
    ASSERT_FALSE(verdict.ok());
    EXPECT_EQ(verdict.violation, ex::Violation::StatusMismatch);
}

TEST(ValidateResult, AcceptsInfeasibleWithoutSolution)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    ex::ExtractionResult result;
    result.status = ex::SolveStatus::Infeasible;
    result.cost = std::numeric_limits<double>::infinity();
    const auto verdict = ex::validateResult(g, result);
    EXPECT_TRUE(verdict.ok()) << verdict.message;
}

// ------------------------------------------------------ serializer errors

TEST(SerializeHardening, RejectsDanglingChild)
{
    const std::string text = R"({
        "nodes": {
            "n0": {"op": "f", "children": ["missing"], "eclass": "c0"}
        },
        "root_eclasses": ["c0"]
    })";
    std::string error;
    EXPECT_EQ(eg::fromJson(text, &error), std::nullopt);
    EXPECT_NE(error.find("missing"), std::string::npos) << error;
}

TEST(SerializeHardening, RejectsEmptyGraph)
{
    std::string error;
    EXPECT_EQ(eg::fromJson(R"({"nodes": {}, "root_eclasses": ["c"]})",
                           &error),
              std::nullopt);
    EXPECT_NE(error.find("no nodes"), std::string::npos) << error;
}

TEST(SerializeHardening, RejectsNonNumericCost)
{
    const std::string text = R"({
        "nodes": {
            "n0": {"op": "x", "children": [], "eclass": "c0",
                   "cost": "cheap"}
        },
        "root_eclasses": ["c0"]
    })";
    std::string error;
    EXPECT_EQ(eg::fromJson(text, &error), std::nullopt);
    EXPECT_NE(error.find("cost"), std::string::npos) << error;
}

TEST(SerializeHardening, RejectsUnknownRoot)
{
    const std::string text = R"({
        "nodes": {
            "n0": {"op": "x", "children": [], "eclass": "c0"}
        },
        "root_eclasses": ["c999"]
    })";
    std::string error;
    EXPECT_EQ(eg::fromJson(text, &error), std::nullopt);
    EXPECT_NE(error.find("c999"), std::string::npos) << error;
}

TEST(SerializeHardening, RoundTripsHealthyGraph)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    std::string error;
    const auto loaded = eg::fromJson(eg::toJson(g, /*pretty=*/false),
                                     &error);
    ASSERT_NE(loaded, std::nullopt) << error;
    EXPECT_EQ(loaded->numNodes(), g.numNodes());
    EXPECT_EQ(loaded->numClasses(), g.numClasses());
    EXPECT_EQ(loaded->checkInvariants(), std::nullopt);
}

} // namespace
