/**
 * @file
 * Equality-saturation engine tests: terms, patterns, hashconsing,
 * union-find + congruence, e-matching, rewriting, export.
 */

#include <gtest/gtest.h>

#include "eqsat/mut_egraph.hpp"
#include "eqsat/rules.hpp"
#include "eqsat/term.hpp"
#include "extraction/bottom_up.hpp"

namespace es = smoothe::eqsat;
namespace eg = smoothe::eg;

TEST(Term, ParseAndPrint)
{
    auto term = es::parseTerm("(+ x (* y z))");
    ASSERT_TRUE(term.has_value());
    EXPECT_EQ((*term)->toString(), "(+ x (* y z))");
    EXPECT_EQ((*term)->op, "+");
    EXPECT_EQ((*term)->children.size(), 2u);

    EXPECT_FALSE(es::parseTerm("(+ x").has_value());
    EXPECT_FALSE(es::parseTerm("").has_value());
    EXPECT_FALSE(es::parseTerm("x y").has_value());
}

TEST(Term, ParsePattern)
{
    auto pattern = es::parsePattern("(* ?a (+ ?b one))");
    ASSERT_TRUE(pattern.has_value());
    EXPECT_FALSE((*pattern)->isVar());
    EXPECT_TRUE((*pattern)->children[0]->isVar());
    EXPECT_EQ((*pattern)->children[0]->var, "?a");
    EXPECT_FALSE((*pattern)->children[1]->isVar());
    EXPECT_EQ((*pattern)->children[1]->children[1]->op, "one");
}

TEST(MutEGraph, HashconsingDeduplicates)
{
    es::MutEGraph g;
    const auto x1 = g.add("x", {});
    const auto x2 = g.add("x", {});
    EXPECT_EQ(x1, x2);
    const auto f1 = g.add("f", {x1});
    const auto f2 = g.add("f", {x2});
    EXPECT_EQ(f1, f2);
    EXPECT_EQ(g.numNodes(), 2u);
}

TEST(MutEGraph, MergeAndCongruence)
{
    es::MutEGraph g;
    const auto a = g.add("a", {});
    const auto b = g.add("b", {});
    const auto fa = g.add("f", {a});
    const auto fb = g.add("f", {b});
    EXPECT_NE(g.find(fa), g.find(fb));
    g.merge(a, b);
    g.rebuild();
    // Congruence: a = b implies f(a) = f(b).
    EXPECT_EQ(g.find(fa), g.find(fb));
}

TEST(MutEGraph, DeepCongruenceChain)
{
    es::MutEGraph g;
    const auto a = g.add("a", {});
    const auto b = g.add("b", {});
    const auto fa = g.add("f", {a});
    const auto fb = g.add("f", {b});
    const auto gfa = g.add("g", {fa});
    const auto gfb = g.add("g", {fb});
    g.merge(a, b);
    g.rebuild();
    EXPECT_EQ(g.find(gfa), g.find(gfb));
}

TEST(MutEGraph, AddTerm)
{
    es::MutEGraph g;
    auto term = es::parseTerm("(+ x (+ x x))");
    ASSERT_TRUE(term.has_value());
    g.addTerm(**term);
    // x shared: nodes are x, (+ x x), (+ x (+ x x)).
    EXPECT_EQ(g.numNodes(), 3u);
}

TEST(MutEGraph, EMatchBindsVariables)
{
    es::MutEGraph g;
    auto term = es::parseTerm("(* (sec a) (sec a))");
    const auto root = g.addTerm(**term);
    auto pattern = es::parsePattern("(* ?x ?x)");
    const auto matches = g.ematch(**pattern, root);
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches.front().count("?x"), 1u);

    auto mismatched = es::parsePattern("(+ ?x ?x)");
    EXPECT_TRUE(g.ematch(**mismatched, root).empty());
}

TEST(MutEGraph, EMatchNonlinearRejectsDifferentClasses)
{
    es::MutEGraph g;
    auto term = es::parseTerm("(* a b)");
    const auto root = g.addTerm(**term);
    auto pattern = es::parsePattern("(* ?x ?x)");
    EXPECT_TRUE(g.ematch(**pattern, root).empty());
}

TEST(MutEGraph, RunAppliesRewrite)
{
    es::MutEGraph g;
    auto term = es::parseTerm("(sec a)");
    const auto root = g.addTerm(**term);

    const std::vector<es::Rewrite> rules = {
        es::rewrite("sec-to-cos", "(sec ?x)", "(recip (cos ?x))"),
    };
    es::RunLimits limits;
    const auto stats = g.run(rules, limits);
    EXPECT_TRUE(stats.saturated);
    EXPECT_GE(stats.totalMatches, 1u);

    // The root class now contains both forms.
    auto recipPattern = es::parsePattern("(recip (cos ?x))");
    EXPECT_FALSE(g.ematch(**recipPattern, root).empty());
    auto secPattern = es::parsePattern("(sec ?x)");
    EXPECT_FALSE(g.ematch(**secPattern, root).empty());
}

TEST(MutEGraph, CommutativitySaturates)
{
    es::MutEGraph g;
    auto term = es::parseTerm("(+ a b)");
    const auto root = g.addTerm(**term);
    const std::vector<es::Rewrite> rules = {
        es::rewrite("comm", "(+ ?x ?y)", "(+ ?y ?x)"),
    };
    const auto stats = g.run(rules, {});
    EXPECT_TRUE(stats.saturated);
    auto flipped = es::parsePattern("(+ b a)");
    EXPECT_FALSE(g.ematchAll(**flipped).empty());
    (void)root;
}

TEST(MutEGraph, NodeLimitStopsGrowth)
{
    es::MutEGraph g;
    auto term = es::parseTerm("(+ a (+ b (+ c d)))");
    g.addTerm(**term);
    const std::vector<es::Rewrite> rules = {
        es::rewrite("assoc", "(+ ?x (+ ?y ?z))", "(+ (+ ?x ?y) ?z)"),
        es::rewrite("comm", "(+ ?x ?y)", "(+ ?y ?x)"),
    };
    es::RunLimits limits;
    limits.maxNodes = 30;
    limits.maxIterations = 50;
    const auto stats = g.run(rules, limits);
    EXPECT_TRUE(stats.hitNodeLimit || stats.saturated);
}

TEST(MutEGraph, ExportProducesValidEGraph)
{
    es::MutEGraph g;
    auto term = es::parseTerm("(* (sec a) (sec a))");
    const auto root = g.addTerm(**term);
    const std::vector<es::Rewrite> rules = {
        es::rewrite("sec-to-cos", "(sec ?x)", "(recip (cos ?x))"),
    };
    g.run(rules, {});

    const eg::EGraph exported = g.exportGraph(root, [](const std::string& op,
                                                       std::size_t) {
        return op == "a" ? 0.0 : 1.0;
    });
    EXPECT_TRUE(exported.finalized());
    EXPECT_GT(exported.numNodes(), 3u);

    // The exported graph must be extractable.
    smoothe::extract::BottomUpExtractor extractor;
    const auto result = extractor.extract(exported, {});
    EXPECT_TRUE(result.ok());
}

TEST(Rules, ArithmeticStrengthReduction)
{
    // (* a two) must become equivalent to (<< a one) under saturation.
    es::MutEGraph g;
    auto term = es::parseTerm("(* a two)");
    const auto root = g.addTerm(**term);
    g.run(es::arithmeticRules(), {});
    auto shifted = es::parsePattern("(<< a one)");
    EXPECT_FALSE(g.ematch(**shifted, root).empty());
}

TEST(Rules, ArithmeticIdentityElimination)
{
    // (+ (* a one) zero) saturates to contain plain a in the root class.
    es::MutEGraph g;
    auto term = es::parseTerm("(+ (* a one) zero)");
    const auto root = g.addTerm(**term);
    const auto a = g.add("a", {});
    g.run(es::arithmeticRules(), {});
    EXPECT_EQ(g.find(root), g.find(a));
}

TEST(Rules, DatapathMacFusion)
{
    es::MutEGraph g;
    auto term = es::parseTerm("(+ (* a b) c)");
    const auto root = g.addTerm(**term);
    g.run(es::datapathRules(), {});
    auto mac = es::parsePattern("(mac a b c)");
    EXPECT_FALSE(g.ematch(**mac, root).empty());
}

TEST(Rules, DistributivityBothWays)
{
    es::MutEGraph g;
    auto term = es::parseTerm("(* a (+ b c))");
    const auto root = g.addTerm(**term);
    g.run(es::arithmeticRules(), {});
    auto expanded = es::parsePattern("(+ (* a b) (* a c))");
    EXPECT_FALSE(g.ematch(**expanded, root).empty());
}

TEST(MutEGraph, SymbolInterning)
{
    es::MutEGraph g;
    const auto idA = g.internSymbol("foo");
    const auto idB = g.internSymbol("bar");
    EXPECT_NE(idA, idB);
    EXPECT_EQ(g.internSymbol("foo"), idA);
    EXPECT_EQ(g.symbolName(idA), "foo");
    EXPECT_EQ(g.symbolName(idB), "bar");
}

TEST(MutEGraph, MatchCapLimitsWork)
{
    es::MutEGraph g;
    auto term = es::parseTerm("(+ a (+ b (+ c (+ d e))))");
    g.addTerm(**term);
    es::RunLimits limits;
    limits.maxMatchesPerRule = 1; // starve the engine
    limits.maxIterations = 2;
    const auto stats = g.run(
        {es::rewrite("comm", "(+ ?x ?y)", "(+ ?y ?x)")}, limits);
    EXPECT_LE(stats.totalMatches, 2u); // 1 per iteration
}

TEST(MutEGraph, PaperFigureOneRewrites)
{
    // Reproduce the Figure 1 flow: sec^2(a) + tan(a) with both rewrites.
    es::MutEGraph g;
    auto term = es::parseTerm("(+ (square (sec a)) (tan a))");
    ASSERT_TRUE(term.has_value());
    const auto root = g.addTerm(**term);
    const std::vector<es::Rewrite> rules = {
        es::rewrite("sec-to-cos", "(sec ?x)", "(recip (cos ?x))"),
        es::rewrite("sec2-to-tan2", "(square (sec ?x))",
                    "(+ one (square (tan ?x)))"),
    };
    const auto stats = g.run(rules, {});
    EXPECT_TRUE(stats.saturated);

    // Both rewritten forms are representable now.
    auto form1 = es::parsePattern("(+ (+ one (square (tan ?x))) (tan ?x))");
    EXPECT_FALSE(g.ematch(**form1, root).empty());
    auto form2 = es::parsePattern("(square (recip (cos ?x)))");
    EXPECT_FALSE(g.ematchAll(**form2).empty());
}
