/**
 * @file
 * Dataset generator tests: structural statistics vs the targets of
 * Table 1, feasibility, determinism, NP-hard reductions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "datasets/generators.hpp"
#include "datasets/eqsat_grown.hpp"
#include "datasets/nphard.hpp"
#include "datasets/registry.hpp"
#include "extraction/bottom_up.hpp"
#include "extraction/random_sample.hpp"

namespace ds = smoothe::datasets;
namespace eg = smoothe::eg;
namespace ex = smoothe::extract;

class FamilyStatsTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(FamilyStatsTest, MatchesTargetStructure)
{
    const ds::FamilyParams params = ds::familyParams(GetParam());
    const eg::EGraph g = ds::generateStructured(params, 12345);
    const auto& stats = g.stats();

    // N/M ratio within 35% of the family target.
    const double ratio =
        static_cast<double>(stats.numNodes) / stats.numClasses;
    EXPECT_NEAR(ratio, params.nodesPerClass,
                0.35 * params.nodesPerClass + 0.3)
        << GetParam();

    // Average degree within 30% of the target d(v).
    EXPECT_NEAR(stats.avgDegree, params.avgArity, 0.3 * params.avgArity)
        << GetParam();
}

TEST_P(FamilyStatsTest, FeasibleAndFullyReachable)
{
    ds::FamilyParams params = ds::familyParams(GetParam());
    params.numClasses = std::min<std::size_t>(params.numClasses, 300);
    const eg::EGraph g = ds::generateStructured(params, 777);
    EXPECT_EQ(g.reachableClasses().size(), g.numClasses()) << GetParam();

    ex::BottomUpExtractor extractor;
    const auto result = extractor.extract(g, {});
    ASSERT_TRUE(result.ok()) << GetParam();
    EXPECT_TRUE(ex::validate(g, result.selection).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyStatsTest,
                         ::testing::Values("diospyros", "flexc", "impress",
                                           "rover", "tensat"));

TEST(Generators, Deterministic)
{
    const ds::FamilyParams params = ds::flexcParams();
    const eg::EGraph a = ds::generateStructured(params, 5);
    const eg::EGraph b = ds::generateStructured(params, 5);
    EXPECT_EQ(a.numNodes(), b.numNodes());
    EXPECT_EQ(a.numClasses(), b.numClasses());
    for (eg::NodeId nid = 0; nid < a.numNodes(); ++nid) {
        EXPECT_EQ(a.node(nid).op, b.node(nid).op);
        EXPECT_EQ(a.node(nid).children, b.node(nid).children);
        EXPECT_DOUBLE_EQ(a.node(nid).cost, b.node(nid).cost);
    }
}

TEST(Generators, DifferentSeedsDiffer)
{
    const ds::FamilyParams params = ds::flexcParams();
    const eg::EGraph a = ds::generateStructured(params, 5);
    const eg::EGraph b = ds::generateStructured(params, 6);
    EXPECT_NE(a.numNodes(), b.numNodes());
}

TEST(Generators, FamilyProducesRequestedCount)
{
    const auto graphs = ds::generateFamily(ds::roverParams(), 0.2, 9);
    EXPECT_EQ(graphs.size(), ds::roverParams().numGraphs);
    for (const auto& named : graphs) {
        EXPECT_EQ(named.family, "rover");
        EXPECT_TRUE(named.graph.finalized());
    }
}

TEST(Generators, ScaleControlsSize)
{
    const auto small = ds::generateFamily(ds::flexcParams(), 0.1, 4);
    const auto large = ds::generateFamily(ds::flexcParams(), 0.4, 4);
    EXPECT_LT(small.front().graph.numClasses(),
              large.front().graph.numClasses());
}

TEST(Generators, NamedInstancesHaveExpectedNames)
{
    const auto tensat = ds::tensatNamedInstances(0.1, 3);
    ASSERT_EQ(tensat.size(), 5u);
    EXPECT_EQ(tensat[0].name, "NASNet-A");
    EXPECT_EQ(tensat[4].name, "ResNet-50");

    const auto rover = ds::roverNamedInstances(0.1, 3);
    ASSERT_EQ(rover.size(), 9u);
    EXPECT_EQ(rover[0].name, "fir_5");
    EXPECT_EQ(rover[8].name, "mcm_9");
}

TEST(Generators, PaperExampleCostsMatchFigure2)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    EXPECT_EQ(g.numClasses(), 8u);
    EXPECT_EQ(g.numNodes(), 10u);
    double total = 0.0;
    for (eg::NodeId nid = 0; nid < g.numNodes(); ++nid)
        total += g.node(nid).cost;
    EXPECT_DOUBLE_EQ(total, 0 + 10 + 10 + 5 + 10 + 5 + 0 + 5 + 2 + 2);
}

TEST(SetCover, InstanceCoversEveryElement)
{
    smoothe::util::Rng rng(1);
    const auto instance = ds::randomSetCover(50, 10, 3.0, rng);
    std::vector<bool> covered(50, false);
    for (const auto& set : instance.sets) {
        for (auto element : set)
            covered[element] = true;
    }
    for (bool c : covered)
        EXPECT_TRUE(c);
}

TEST(SetCover, ReductionStructure)
{
    smoothe::util::Rng rng(2);
    const auto instance = ds::randomSetCover(30, 8, 3.0, rng);
    const eg::EGraph g = ds::setCoverToEGraph(instance);
    // Root + 30 elements + at most 8 set classes.
    EXPECT_LE(g.numClasses(), 39u);
    EXPECT_GE(g.numClasses(), 32u);
    EXPECT_TRUE(g.dependencyGraphIsAcyclic());

    // Any greedy extraction is a cover: every element class resolves.
    ex::BottomUpExtractor extractor;
    const auto result = extractor.extract(g, {});
    ASSERT_TRUE(result.ok());
}

TEST(SetCover, HeuristicOverpaysIlpOptimal)
{
    // The adversarial point of the dataset (Table 4): tree-cost heuristics
    // cannot see set reuse across elements.
    smoothe::util::Rng rng(3);
    const auto instance = ds::randomSetCover(40, 10, 4.0, rng);
    const eg::EGraph g = ds::setCoverToEGraph(instance);
    ex::BottomUpExtractor heuristic;
    const auto heuristicResult = heuristic.extract(g, {});
    const double optimal = ds::bruteForceSetCover(instance);
    ASSERT_TRUE(heuristicResult.ok());
    EXPECT_GE(heuristicResult.cost, optimal - 1e-9);
}

TEST(MaxSat, ReductionBasics)
{
    smoothe::util::Rng rng(4);
    const auto instance = ds::randomMaxSat(10, 25, 3, rng);
    EXPECT_EQ(instance.clauses.size(), 25u);
    for (const auto& clause : instance.clauses) {
        EXPECT_EQ(clause.size(), 3u);
        for (int literal : clause) {
            EXPECT_NE(literal, 0);
            EXPECT_LE(std::abs(literal), 10);
        }
    }
    const eg::EGraph g = ds::maxSatToEGraph(instance);
    // Root + 20 literal classes + 25 clause classes.
    EXPECT_EQ(g.numClasses(), 46u);
    EXPECT_TRUE(g.dependencyGraphIsAcyclic());
}

TEST(MaxSat, SatisfiableInstanceCostsVariableCount)
{
    // A trivially satisfiable instance: x1 OR x2 repeated — optimum picks
    // one literal and reuses it everywhere.
    ds::MaxSatInstance instance;
    instance.numVariables = 2;
    instance.clauses = {{1, 2}, {1, 2}, {1, 2}};
    instance.violationPenalty = 10.0;
    // One shared literal (x1 or x2) satisfies all three clauses.
    EXPECT_DOUBLE_EQ(ds::bruteForceMaxSatCost(instance), 1.0);
}

TEST(EqsatGrown, RandomTermsParseableShape)
{
    smoothe::util::Rng rng(31);
    for (int i = 0; i < 10; ++i) {
        const auto term =
            ds::randomTerm(ds::TermFlavor::Arithmetic, 4, 3, rng);
        ASSERT_NE(term, nullptr);
        EXPECT_FALSE(term->toString().empty());
    }
}

TEST(EqsatGrown, GrowsValidExtractableEGraph)
{
    smoothe::util::Rng rng(32);
    const eg::EGraph g =
        ds::growEGraph(ds::TermFlavor::Arithmetic, 4, 2000, rng);
    EXPECT_GT(g.numNodes(), 3u);
    ex::BottomUpExtractor extractor;
    const auto result = extractor.extract(g, {});
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(ex::validate(g, result.selection).ok());
}

TEST(EqsatGrown, FirSaturationCreatesAlternatives)
{
    smoothe::util::Rng rng(33);
    const eg::EGraph g = ds::growFirEGraph(4, 3000, rng);
    // Saturation must have added equivalent forms: more nodes than the
    // initial term (4 muls + 3 adds + leaves ~ 12).
    EXPECT_GT(g.numNodes(), 15u);
    EXPECT_GT(g.stats().maxClassSize, 1u);

    // MAC fusion should make the extracted cost cheaper than the
    // original mul+add implementation (4*16 + 3*4 = 76).
    ex::FasterBottomUpExtractor extractor;
    const auto result = extractor.extract(g, {});
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result.cost, 76.0);
}

TEST(EqsatGrown, DatapathFlavorUsesDatapathOps)
{
    smoothe::util::Rng rng(34);
    const eg::EGraph g =
        ds::growEGraph(ds::TermFlavor::Datapath, 4, 2000, rng);
    bool sawMacOrMul = false;
    for (eg::NodeId nid = 0; nid < g.numNodes(); ++nid) {
        if (g.node(nid).op == "mac" || g.node(nid).op == "*")
            sawMacOrMul = true;
    }
    EXPECT_TRUE(sawMacOrMul);
}

TEST(Registry, AllFamiliesLoad)
{
    for (const auto& family : ds::allFamilies()) {
        const auto graphs = ds::loadFamily(family, 0.05, 42);
        EXPECT_FALSE(graphs.empty()) << family;
        for (const auto& named : graphs) {
            EXPECT_TRUE(named.graph.finalized()) << named.name;
            EXPECT_GT(named.graph.numNodes(), 0u) << named.name;
        }
    }
}

TEST(Registry, TableOneOrdering)
{
    // The paper's seven Table 1 families in paper order, then this
    // repo's eqsat-grown caviar extension.
    const auto& families = ds::allFamilies();
    ASSERT_EQ(families.size(), 8u);
    EXPECT_EQ(families.front(), "diospyros");
    EXPECT_EQ(families[6], "maxsat");
    EXPECT_EQ(families.back(), "caviar");
}
