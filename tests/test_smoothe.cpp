/**
 * @file
 * SmoothE extractor tests: optimality on the paper example, validity on
 * every dataset family, all three assumptions, NOTEARS behaviour on
 * cyclic graphs, seed batching, OOM emulation, loss curves, profiling.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "datasets/generators.hpp"
#include "datasets/registry.hpp"
#include "extraction/solution.hpp"
#include "ilp/ilp_extractor.hpp"
#include "extraction/validate.hpp"
#include "smoothe/smoothe.hpp"
#include "util/thread_pool.hpp"

namespace core = smoothe::core;
namespace ds = smoothe::datasets;
namespace eg = smoothe::eg;
namespace ex = smoothe::extract;

namespace {

core::SmoothEConfig
fastConfig()
{
    core::SmoothEConfig config;
    config.numSeeds = 8;
    config.maxIterations = 120;
    config.patience = 40;
    config.learningRate = 0.15f;
    return config;
}

/** Full certification: structure, status, and the reported-cost check. */
void
expectCertified(const eg::EGraph& g, const ex::ExtractionResult& result)
{
    const auto verdict = ex::validateResult(g, result);
    EXPECT_TRUE(verdict.ok()) << verdict.message;
}

} // namespace

TEST(SmoothE, SolvesPaperExampleOptimally)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    core::SmoothEExtractor extractor(fastConfig());
    ex::ExtractOptions options;
    options.seed = 1;
    const auto result = extractor.extract(g, options);
    ASSERT_TRUE(result.ok()) << result.note;
    expectCertified(g, result);
    // Beats the bottom-up heuristic (27) and should find the optimum 19.
    EXPECT_LE(result.cost, 19.0 + 1e-6);
}

class SmoothEAssumptionTest
    : public ::testing::TestWithParam<core::Assumption>
{};

TEST_P(SmoothEAssumptionTest, ValidOnPaperExample)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    core::SmoothEConfig config = fastConfig();
    config.assumption = GetParam();
    core::SmoothEExtractor extractor(config);
    ex::ExtractOptions options;
    options.seed = 2;
    const auto result = extractor.extract(g, options);
    ASSERT_TRUE(result.ok());
    expectCertified(g, result);
    EXPECT_LE(result.cost, 27.0); // at least as good as the heuristic
}

INSTANTIATE_TEST_SUITE_P(Assumptions, SmoothEAssumptionTest,
                         ::testing::Values(core::Assumption::Independent,
                                           core::Assumption::Correlated,
                                           core::Assumption::Hybrid));

class SmoothEFamilyTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(SmoothEFamilyTest, ProducesValidSolutions)
{
    const auto graphs = ds::loadFamily(GetParam(), 0.08, 21);
    const eg::EGraph& g = graphs.front().graph;
    core::SmoothEConfig config = fastConfig();
    config.maxIterations = 60;
    core::SmoothEExtractor extractor(config);
    ex::ExtractOptions options;
    options.seed = 3;
    const auto result = extractor.extract(g, options);
    ASSERT_TRUE(result.ok()) << GetParam() << ": " << result.note;
    EXPECT_TRUE(ex::validate(g, result.selection).ok()) << GetParam();
    // result.cost comes from the float32 linear model; dagCost sums the
    // original doubles.
    const double reference = ex::dagCost(g, result.selection);
    EXPECT_NEAR(result.cost, reference, 1e-4 * (1.0 + std::fabs(reference)));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, SmoothEFamilyTest,
                         ::testing::Values("diospyros", "flexc", "impress",
                                           "rover", "tensat", "set",
                                           "maxsat"));

TEST(SmoothE, HandlesCyclicGraphViaNotears)
{
    // Free cycle vs paid escape: NOTEARS must steer away from the cycle.
    eg::EGraph g;
    const auto root = g.addClass();
    const auto a = g.addClass();
    const auto b = g.addClass();
    g.addNode(root, "r", {a}, 0.0);
    g.addNode(a, "fab", {b}, 0.0);
    g.addNode(a, "leafA", {}, 9.0);
    g.addNode(b, "gba", {a}, 0.0);
    g.addNode(b, "leafB", {}, 4.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());

    core::SmoothEConfig config = fastConfig();
    config.lambda = 10.0f;
    core::SmoothEExtractor extractor(config);
    ex::ExtractOptions options;
    options.seed = 5;
    const auto result = extractor.extract(g, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(ex::validate(g, result.selection).ok());
    EXPECT_LE(result.cost, 9.0); // optimal is 4 (fab + leafB)
    EXPECT_EQ(extractor.diagnostics().sccCount, 1u);
    EXPECT_EQ(extractor.diagnostics().largestScc, 2u);
}

TEST(SmoothE, SamplerRepairOffStillWorksWithPenalty)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    core::SmoothEConfig config = fastConfig();
    config.repairSampling = false; // pure paper behaviour
    core::SmoothEExtractor extractor(config);
    ex::ExtractOptions options;
    options.seed = 6;
    const auto result = extractor.extract(g, options);
    // Acyclic graph: the plain arg-max sampler is always valid.
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(ex::validate(g, result.selection).ok());
}

TEST(SmoothE, MoreSeedsNeverHurtMuch)
{
    // Figure 7's qualitative claim: larger seed batches find better or
    // equal solutions (statistically). Compare extremes on one graph.
    ds::FamilyParams params = ds::roverParams();
    params.numClasses = 80;
    const eg::EGraph g = ds::generateStructured(params, 31);

    auto run = [&](std::size_t seeds) {
        core::SmoothEConfig config = fastConfig();
        config.numSeeds = seeds;
        config.maxIterations = 80;
        core::SmoothEExtractor extractor(config);
        ex::ExtractOptions options;
        options.seed = 7;
        return extractor.extract(g, options);
    };
    const auto one = run(1);
    const auto many = run(32);
    ASSERT_TRUE(one.ok());
    ASSERT_TRUE(many.ok());
    EXPECT_LE(many.cost, one.cost * 1.10 + 1e-9);
}

TEST(SmoothE, MemoryBudgetTriggersOom)
{
    ds::FamilyParams params = ds::tensatParams();
    params.numClasses = 200;
    const eg::EGraph g = ds::generateStructured(params, 11);
    core::SmoothEConfig config = fastConfig();
    config.memoryBudgetBytes = 10 * 1024; // absurdly small
    core::SmoothEExtractor extractor(config);
    const auto result = extractor.extract(g, {});
    EXPECT_EQ(result.status, ex::SolveStatus::Failed);
    EXPECT_TRUE(extractor.diagnostics().outOfMemory);
    EXPECT_NE(result.note.find("OOM"), std::string::npos);
}

TEST(SmoothE, PeakMemoryScalesWithSeeds)
{
    ds::FamilyParams params = ds::flexcParams();
    params.numClasses = 60;
    const eg::EGraph g = ds::generateStructured(params, 13);
    auto peak = [&](std::size_t seeds) {
        core::SmoothEConfig config = fastConfig();
        config.numSeeds = seeds;
        config.maxIterations = 3;
        core::SmoothEExtractor extractor(config);
        extractor.extract(g, {});
        return extractor.diagnostics().peakMemoryBytes;
    };
    const auto small = peak(2);
    const auto large = peak(16);
    EXPECT_GT(large, small * 4);
}

TEST(SmoothE, RecordsLossCurves)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    core::SmoothEConfig config = fastConfig();
    config.recordLossCurves = true;
    config.maxIterations = 30;
    config.patience = 1000;
    core::SmoothEExtractor extractor(config);
    const auto result = extractor.extract(g, {});
    ASSERT_TRUE(result.ok());
    const auto& curve = extractor.diagnostics().lossCurve;
    ASSERT_EQ(curve.size(), 30u);
    // Figure 9's claim: by the end, relaxed and sampled losses are close.
    const auto& last = curve.back();
    EXPECT_LT(std::fabs(last.relaxedLoss - last.sampledLoss),
              0.5 * last.sampledLoss + 5.0);
}

TEST(Convergence, RecorderStridesAndWrapsRing)
{
    core::ConvergenceRecorder recorder(/*stride=*/2, /*capacity=*/4);
    std::size_t recorded = 0;
    for (std::size_t iter = 0; iter < 20; ++iter) {
        if (!recorder.wants(iter))
            continue;
        core::ConvergencePoint point;
        point.iteration = iter;
        point.loss = static_cast<double>(iter);
        recorder.record(point);
        ++recorded;
    }
    EXPECT_EQ(recorded, 10u); // iterations 0, 2, ..., 18
    EXPECT_EQ(recorder.size(), 4u);
    EXPECT_EQ(recorder.dropped(), 6u);
    const auto points = recorder.ordered();
    ASSERT_EQ(points.size(), 4u);
    // Ring keeps the newest points, returned oldest-first.
    EXPECT_EQ(points.front().iteration, 12u);
    EXPECT_EQ(points.back().iteration, 18u);
    for (std::size_t i = 1; i < points.size(); ++i)
        EXPECT_GT(points[i].iteration, points[i - 1].iteration);
}

TEST(Convergence, ZeroCapacityDisablesRecording)
{
    core::ConvergenceRecorder recorder(1, 0);
    EXPECT_FALSE(recorder.wants(0));
    recorder.record({});
    EXPECT_TRUE(recorder.empty());
}

TEST(Convergence, ExtractionFillsDiagnostics)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    core::SmoothEConfig config = fastConfig();
    config.maxIterations = 30;
    config.patience = 1000;
    core::SmoothEExtractor extractor(config);
    const auto result = extractor.extract(g, {});
    ASSERT_TRUE(result.ok());
    const auto& curve = extractor.diagnostics().convergence;
    ASSERT_EQ(curve.size(), 30u);
    EXPECT_EQ(extractor.diagnostics().convergenceDropped, 0u);
    for (std::size_t i = 0; i < curve.size(); ++i) {
        EXPECT_EQ(curve[i].iteration, i);
        EXPECT_TRUE(std::isfinite(curve[i].loss));
        EXPECT_TRUE(std::isfinite(curve[i].softCost));
        EXPECT_GE(curve[i].gradNorm, 0.0);
        if (i > 0) {
            EXPECT_GE(curve[i].wallSeconds, curve[i - 1].wallSeconds);
        }
    }
    // Sampling happens every iteration here, so the best sampled cost
    // is valid and matches the final extraction cost direction-wise.
    EXPECT_GT(curve.back().sampledCost, 0.0);
}

TEST(Convergence, StrideThinsExtractionTrajectory)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    core::SmoothEConfig config = fastConfig();
    config.maxIterations = 30;
    config.patience = 1000;
    config.convergenceStride = 10;
    core::SmoothEExtractor extractor(config);
    ASSERT_TRUE(extractor.extract(g, {}).ok());
    const auto& curve = extractor.diagnostics().convergence;
    ASSERT_EQ(curve.size(), 3u); // iterations 0, 10, 20
    for (const auto& point : curve)
        EXPECT_EQ(point.iteration % 10, 0u);
}

TEST(Convergence, CompiledAndEagerTrajectoriesMatch)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    core::SmoothEConfig config = fastConfig();
    config.maxIterations = 20;
    config.patience = 1000;

    config.compiledReplay = false;
    core::SmoothEExtractor eager(config);
    ASSERT_TRUE(eager.extract(g, {}).ok());

    config.compiledReplay = true;
    core::SmoothEExtractor compiled(config);
    ASSERT_TRUE(compiled.extract(g, {}).ok());

    const auto& a = eager.diagnostics().convergence;
    const auto& b = compiled.diagnostics().convergence;
    ASSERT_EQ(a.size(), b.size());
    // The compiled replay is bitwise-equivalent, so the recorded losses
    // agree exactly (wall times differ, of course).
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].iteration, b[i].iteration);
        EXPECT_DOUBLE_EQ(a[i].loss, b[i].loss);
        EXPECT_DOUBLE_EQ(a[i].softCost, b[i].softCost);
    }
}

TEST(SmoothE, AnytimeTraceMonotone)
{
    ds::FamilyParams params = ds::roverParams();
    params.numClasses = 60;
    const eg::EGraph g = ds::generateStructured(params, 17);
    core::SmoothEExtractor extractor(fastConfig());
    ex::ExtractOptions options;
    options.recordTrace = true;
    options.seed = 9;
    const auto result = extractor.extract(g, options);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result.trace.empty());
    for (std::size_t i = 1; i < result.trace.size(); ++i) {
        EXPECT_LE(result.trace[i].cost, result.trace[i - 1].cost);
        EXPECT_GE(result.trace[i].seconds, result.trace[i - 1].seconds);
    }
    EXPECT_DOUBLE_EQ(result.trace.back().cost, result.cost);
}

TEST(SmoothE, ProfilerCoversRuntime)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    core::SmoothEExtractor extractor(fastConfig());
    const auto result = extractor.extract(g, {});
    ASSERT_TRUE(result.ok());
    const auto& profile = extractor.diagnostics().profile;
    EXPECT_GT(profile.lossSeconds, 0.0);
    EXPECT_GT(profile.gradientSeconds, 0.0);
    EXPECT_GT(profile.samplingSeconds, 0.0);
    // The three phases dominate the total wall clock.
    EXPECT_GT(profile.total(), 0.5 * result.seconds);
}

TEST(SmoothE, BackendsAgreeOnQualityClass)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    auto run = [&](smoothe::tensor::Backend backend) {
        core::SmoothEConfig config = fastConfig();
        config.backend = backend;
        core::SmoothEExtractor extractor(config);
        ex::ExtractOptions options;
        options.seed = 10;
        return extractor.extract(g, options);
    };
    const auto fast = run(smoothe::tensor::Backend::Vectorized);
    const auto slow = run(smoothe::tensor::Backend::Scalar);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    // Same algorithm, same seeds: identical extraction cost.
    EXPECT_NEAR(fast.cost, slow.cost, 1.0);
}

TEST(SmoothE, PatienceStopsEarly)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    core::SmoothEConfig config = fastConfig();
    config.maxIterations = 5000;
    config.patience = 5;
    core::SmoothEExtractor extractor(config);
    const auto result = extractor.extract(g, {});
    ASSERT_TRUE(result.ok());
    EXPECT_LT(extractor.diagnostics().iterations, 5000u);
}

TEST(SmoothE, TimeLimitRespected)
{
    ds::FamilyParams params = ds::tensatParams();
    params.numClasses = 300;
    const eg::EGraph g = ds::generateStructured(params, 19);
    core::SmoothEConfig config = fastConfig();
    config.maxIterations = 100000;
    config.patience = 100000;
    core::SmoothEExtractor extractor(config);
    ex::ExtractOptions options;
    options.timeLimitSeconds = 1.0;
    const auto result = extractor.extract(g, options);
    EXPECT_LT(result.seconds, 10.0);
}

TEST(SmoothE, DampedPropagationStillValid)
{
    // Strongly cyclic graph: damping must not break validity or quality.
    ds::FamilyParams params = ds::tensatParams();
    params.numClasses = 60;
    params.cycleFraction = 0.1;
    const eg::EGraph g = ds::generateStructured(params, 404);

    core::SmoothEConfig config = fastConfig();
    config.damping = 0.3f;
    core::SmoothEExtractor damped(config);
    ex::ExtractOptions options;
    options.seed = 15;
    const auto result = damped.extract(g, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(ex::validate(g, result.selection).ok());
}

TEST(SmoothE, LambdaWarmupStillSatisfiesAcyclicity)
{
    eg::EGraph g;
    const auto root = g.addClass();
    const auto a = g.addClass();
    const auto b = g.addClass();
    g.addNode(root, "r", {a}, 0.0);
    g.addNode(a, "fab", {b}, 0.0);
    g.addNode(a, "leafA", {}, 9.0);
    g.addNode(b, "gba", {a}, 0.0);
    g.addNode(b, "leafB", {}, 4.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());

    core::SmoothEConfig config = fastConfig();
    config.lambdaWarmupIterations = 30;
    core::SmoothEExtractor extractor(config);
    ex::ExtractOptions options;
    options.seed = 16;
    const auto result = extractor.extract(g, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(ex::validate(g, result.selection).ok());
    EXPECT_LE(result.cost, 9.0);
}

TEST(SmoothE, CompiledReplayMatchesEagerBitwise)
{
    // Same seed, same graph: the compiled Program replay and the eager
    // per-iteration tape rebuild must walk the exact same optimization
    // trajectory, so every sampled selection — and hence the final cost
    // and choices — is identical, at 1 and at 4 worker threads. The
    // lambda warmup exercises the mutable "lambda" input slot.
    const auto graphs = ds::loadFamily("rover", 0.05, 11);
    const eg::EGraph& g = graphs.front().graph;
    auto run = [&](bool compiled, std::size_t threads) {
        core::SmoothEConfig config = fastConfig();
        config.maxIterations = 30;
        config.lambdaWarmupIterations = 10;
        config.compiledReplay = compiled;
        config.numThreads = threads;
        core::SmoothEExtractor extractor(config);
        ex::ExtractOptions options;
        options.seed = 5;
        options.timeLimitSeconds = 1e9;
        auto result = extractor.extract(g, options);
        EXPECT_EQ(extractor.diagnostics().compiledReplay, compiled);
        if (compiled) {
            EXPECT_GT(extractor.diagnostics().programBuffers, 0u);
            EXPECT_GT(extractor.diagnostics().bufferReuseRatio, 1.0);
        }
        EXPECT_GT(extractor.diagnostics().tapeNodes, 0u);
        return result;
    };
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        const auto compiled = run(true, threads);
        const auto eager = run(false, threads);
        ASSERT_TRUE(compiled.ok());
        ASSERT_TRUE(eager.ok());
        EXPECT_EQ(compiled.cost, eager.cost) << threads << " threads";
        EXPECT_EQ(compiled.selection.choice, eager.selection.choice)
            << threads << " threads";
    }
    smoothe::util::ThreadPool::setGlobalThreads(1); // restore
}

TEST(Probabilities, PaperExampleIndependent)
{
    // Hand-computed phi on the Figure 2/3 graph with uniform theta:
    // every multi-node class splits cp 50/50; classes are
    // alpha(0) cos(1) sec(2) tan(3) tan2(4) one(5) sec2(6) root(7) and
    // nodes alpha(0) cos(1) sec(2) recip(3) tan(4) square-tan(5) one(6)
    // square-sec(7) add-inner(8) add-root(9).
    const eg::EGraph g = ds::paperExampleEGraph();
    smoothe::ad::Tensor theta(1, g.numNodes()); // all zeros
    const auto probs = core::computeProbabilities(
        g, theta, core::Assumption::Independent);

    // cp: singleton classes 1.0, {sec, recip} and {square, add} 0.5 each.
    EXPECT_NEAR(probs.cp.at(0, 0), 1.0, 1e-5);
    EXPECT_NEAR(probs.cp.at(0, 2), 0.5, 1e-5);
    EXPECT_NEAR(probs.cp.at(0, 3), 0.5, 1e-5);
    EXPECT_NEAR(probs.cp.at(0, 7), 0.5, 1e-5);
    EXPECT_NEAR(probs.cp.at(0, 8), 0.5, 1e-5);

    // q per class (independent combination, root pinned to 1).
    EXPECT_NEAR(probs.q.at(0, 7), 1.0, 1e-5);  // root
    EXPECT_NEAR(probs.q.at(0, 6), 1.0, 1e-5);  // sec2
    EXPECT_NEAR(probs.q.at(0, 3), 1.0, 1e-5);  // tan (root add selects it)
    EXPECT_NEAR(probs.q.at(0, 4), 0.5, 1e-5);  // tan2 via inner add
    EXPECT_NEAR(probs.q.at(0, 5), 0.5, 1e-5);  // one via inner add
    EXPECT_NEAR(probs.q.at(0, 2), 0.5, 1e-5);  // sec via square-sec
    EXPECT_NEAR(probs.q.at(0, 1), 0.25, 1e-5); // cos via recip
    EXPECT_NEAR(probs.q.at(0, 0), 1.0, 1e-5);  // alpha via tan (p=1)

    // p = cp * q (Eq. 5).
    EXPECT_NEAR(probs.p.at(0, 9), 1.0, 1e-5);
    EXPECT_NEAR(probs.p.at(0, 7), 0.5, 1e-5);
    EXPECT_NEAR(probs.p.at(0, 3), 0.25, 1e-5); // recip
    EXPECT_NEAR(probs.p.at(0, 1), 0.25, 1e-5); // cos
    EXPECT_NEAR(probs.p.at(0, 4), 1.0, 1e-5);  // tan
}

TEST(Probabilities, AssumptionsCombineParentsDifferently)
{
    // root -> {A, B}; A = {a1 -> S, a2}, B = {b1 -> S, b2}; S singleton.
    // With uniform theta, p(a1) = p(b1) = 0.5, so
    //   independent: q(S) = 1 - 0.5^2 = 0.75
    //   correlated : q(S) = max = 0.5
    //   hybrid     : 0.625
    eg::EGraph g;
    const auto root = g.addClass();
    const auto a = g.addClass();
    const auto b = g.addClass();
    const auto s = g.addClass();
    g.addNode(root, "r", {a, b}, 1.0);
    g.addNode(a, "a1", {s}, 1.0);
    g.addNode(a, "a2", {}, 1.0);
    g.addNode(b, "b1", {s}, 1.0);
    g.addNode(b, "b2", {}, 1.0);
    g.addNode(s, "leaf", {}, 1.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());

    smoothe::ad::Tensor theta(1, g.numNodes());
    const auto indep = core::computeProbabilities(
        g, theta, core::Assumption::Independent);
    const auto corr = core::computeProbabilities(
        g, theta, core::Assumption::Correlated);
    const auto hybrid = core::computeProbabilities(
        g, theta, core::Assumption::Hybrid);
    EXPECT_NEAR(indep.q.at(0, s), 0.75, 1e-5);
    EXPECT_NEAR(corr.q.at(0, s), 0.5, 1e-5);
    EXPECT_NEAR(hybrid.q.at(0, s), 0.625, 1e-5);
}

class ProbabilityBoundsTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(ProbabilityBoundsTest, AllQuantitiesAreProbabilities)
{
    // Property: cp, q, p all stay in [0, 1] and cp sums to 1 per class,
    // on random graphs from every family (including cyclic ones).
    const auto graphs = ds::loadFamily(GetParam(), 0.05, 99);
    const eg::EGraph& g = graphs.front().graph;
    smoothe::util::Rng rng(7);
    smoothe::ad::Tensor theta(2, g.numNodes());
    for (std::size_t i = 0; i < theta.size(); ++i)
        theta.data()[i] = static_cast<float>(rng.normal(0.0, 2.0));

    for (const auto assumption :
         {core::Assumption::Independent, core::Assumption::Correlated,
          core::Assumption::Hybrid}) {
        const auto probs = core::computeProbabilities(g, theta, assumption);
        for (std::size_t i = 0; i < probs.cp.size(); ++i) {
            EXPECT_GE(probs.cp.data()[i], -1e-5);
            EXPECT_LE(probs.cp.data()[i], 1.0 + 1e-5);
        }
        for (std::size_t i = 0; i < probs.q.size(); ++i) {
            EXPECT_GE(probs.q.data()[i], -1e-5);
            EXPECT_LE(probs.q.data()[i], 1.0 + 1e-4);
        }
        for (std::size_t i = 0; i < probs.p.size(); ++i) {
            EXPECT_GE(probs.p.data()[i], -1e-5);
            EXPECT_LE(probs.p.data()[i], 1.0 + 1e-4);
        }
        // cp sums to 1 within each class (softmax invariant).
        for (eg::ClassId cls = 0; cls < g.numClasses(); ++cls) {
            for (std::size_t row = 0; row < 2; ++row) {
                double sum = 0.0;
                for (eg::NodeId nid : g.nodesInClass(cls))
                    sum += probs.cp.at(row, nid);
                EXPECT_NEAR(sum, 1.0, 1e-4);
            }
        }
        // Root q pinned to 1.
        EXPECT_NEAR(probs.q.at(0, g.root()), 1.0, 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ProbabilityBoundsTest,
                         ::testing::Values("flexc", "rover", "tensat",
                                           "set", "maxsat"));

TEST(SmoothE, TemperatureSamplingStillValid)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    core::SmoothEConfig config = fastConfig();
    config.sampleTemperature = 0.5f;
    core::SmoothEExtractor extractor(config);
    ex::ExtractOptions options;
    options.seed = 77;
    const auto result = extractor.extract(g, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(ex::validate(g, result.selection).ok());
    // Stochastic sampling explores more: still must find <= heuristic.
    EXPECT_LE(result.cost, 27.0);
}

TEST(SmoothE, AssumptionNames)
{
    EXPECT_STREQ(core::toString(core::Assumption::Independent),
                 "independent");
    EXPECT_STREQ(core::toString(core::Assumption::Correlated),
                 "correlated");
    EXPECT_STREQ(core::toString(core::Assumption::Hybrid), "hybrid");
}
