/**
 * @file
 * End-to-end tests of the CLI tools (smoothe_extract, egraph_gen) by
 * invoking the actual binaries: generate a dataset to JSON, extract from
 * it with several extractors, and check the machine-readable output.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/report.hpp"
#include "util/json.hpp"

namespace {

/** Locates a built binary relative to the test executable's directory. */
std::string
binaryPath(const std::string& name)
{
    // Tests run from build/tests (ctest) or anywhere (manual); try the
    // build-tree layout first.
    const char* candidates[] = {"../tools/", "./build/tools/",
                                "build/tools/"};
    for (const char* dir : candidates) {
        const std::string path = std::string(dir) + name;
        if (FILE* f = std::fopen(path.c_str(), "rb")) {
            std::fclose(f);
            return path;
        }
    }
    return "";
}

int
runCommand(const std::string& command)
{
    return std::system((command + " > /dev/null 2>&1").c_str());
}

} // namespace

TEST(Tools, GenerateThenExtractRoundTrip)
{
    const std::string gen = binaryPath("egraph_gen");
    const std::string extract = binaryPath("smoothe_extract");
    if (gen.empty() || extract.empty())
        GTEST_SKIP() << "tool binaries not found relative to cwd";

    ASSERT_EQ(runCommand(gen + " --family maxsat --scale 0.05 --seed 9 "
                               "--out /tmp"),
              0);

    const std::string out = "/tmp/smoothe_tools_selection.json";
    ASSERT_EQ(runCommand(extract +
                         " --input /tmp/maxsat_0.json --extractor "
                         "heuristic+ --output " + out),
              0);

    auto text = smoothe::util::readFile(out);
    ASSERT_TRUE(text.has_value());
    auto doc = smoothe::util::Json::parse(*text);
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isObject());
    EXPECT_NE(doc->find("cost"), nullptr);
    EXPECT_NE(doc->find("choices"), nullptr);
    EXPECT_EQ(doc->find("extractor")->asString(), "heuristic+");
    EXPECT_GT(doc->find("choices")->asObject().size(), 0u);
}

TEST(Tools, ExtractorsAgreeOnToolInput)
{
    const std::string extract = binaryPath("smoothe_extract");
    if (extract.empty())
        GTEST_SKIP() << "tool binaries not found relative to cwd";

    // smoothe and ilp-strong on the same small instance.
    for (const char* name : {"smoothe", "ilp-strong", "greedy-dag"}) {
        const int code = runCommand(
            extract + std::string(" --input /tmp/maxsat_0.json --extractor ") +
            name + " --time-limit 10 --output /tmp/smoothe_tools_" + name +
            ".json");
        EXPECT_EQ(code, 0) << name;
    }
    auto a = smoothe::util::readFile("/tmp/smoothe_tools_ilp-strong.json");
    auto b = smoothe::util::readFile("/tmp/smoothe_tools_smoothe.json");
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    const double ilpCost =
        smoothe::util::Json::parse(*a)->find("cost")->asNumber();
    const double smootheCost =
        smoothe::util::Json::parse(*b)->find("cost")->asNumber();
    EXPECT_GE(smootheCost, ilpCost - 1e-6); // ILP is optimal here
    EXPECT_LE(smootheCost, ilpCost * 2.0 + 10.0);
}

// A mid-run abort (uncaught exception -> std::terminate) must still
// leave every telemetry file valid: the terminate handler flushes the
// report (including the schema-v2 profile section) and the collapsed-
// stack --profile-out file before the process dies.
TEST(Tools, TerminateFlushKeepsTelemetryFilesValid)
{
    const std::string extract = binaryPath("smoothe_extract");
    if (extract.empty())
        GTEST_SKIP() << "tool binaries not found relative to cwd";

    const std::string report = "/tmp/smoothe_tools_terminate_report.json";
    const std::string folded = "/tmp/smoothe_tools_terminate.folded";
    std::remove(report.c_str());
    std::remove(folded.c_str());
    const int code = runCommand(
        extract + " --input /tmp/maxsat_0.json --extractor smoothe "
                  "--seeds 4 --max-iters 10 --time-limit 10 "
                  "--selftest-terminate --profile --report-out " +
        report + " --profile-out " + folded);
    EXPECT_NE(code, 0); // std::terminate -> abort

    auto reportText = smoothe::util::readFile(report);
    ASSERT_TRUE(reportText.has_value());
    auto doc = smoothe::util::Json::parse(*reportText);
    ASSERT_TRUE(doc.has_value());
    std::string error;
    EXPECT_TRUE(smoothe::obs::validateReportJson(*doc, &error)) << error;
    EXPECT_EQ(smoothe::obs::reportSchemaVersion(*doc), 2);
    const smoothe::util::Json* profile = doc->find("profile");
    ASSERT_NE(profile, nullptr);
    EXPECT_GT(profile->find("kernels")->asObject().size(), 0u);

    // Folded lines are "smoothe;<phase>;<kernel> <micros>".
    auto foldedText = smoothe::util::readFile(folded);
    ASSERT_TRUE(foldedText.has_value());
    ASSERT_FALSE(foldedText->empty());
    std::size_t lines = 0;
    std::size_t start = 0;
    while (start < foldedText->size()) {
        std::size_t end = foldedText->find('\n', start);
        if (end == std::string::npos)
            end = foldedText->size();
        const std::string line = foldedText->substr(start, end - start);
        if (!line.empty()) {
            ++lines;
            EXPECT_EQ(line.rfind("smoothe;", 0), 0u) << line;
            EXPECT_NE(line.find(' '), std::string::npos) << line;
        }
        start = end + 1;
    }
    EXPECT_GT(lines, 0u);
}

TEST(Tools, ExtractRejectsBadInput)
{
    const std::string extract = binaryPath("smoothe_extract");
    if (extract.empty())
        GTEST_SKIP() << "tool binaries not found relative to cwd";
    EXPECT_NE(runCommand(extract + " --input /nonexistent.json"), 0);
    EXPECT_NE(runCommand(extract), 0); // no --input
    smoothe::util::writeFile("/tmp/smoothe_tools_bad.json", "not json");
    EXPECT_NE(runCommand(extract +
                         " --input /tmp/smoothe_tools_bad.json"),
              0);
    EXPECT_NE(runCommand(extract + " --input /tmp/maxsat_0.json "
                                   "--extractor bogus"),
              0);
}
