/**
 * @file
 * End-to-end smoke test of the telemetry surface: runs the real
 * smoothe_extract binary with --trace-out/--metrics-out on a tiny
 * generated e-graph and checks that the trace is valid Chrome trace-event
 * JSON covering the optimizer phases and that the metrics dump contains
 * the headline counters.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "util/json.hpp"

namespace {

/** Locates a built binary relative to the test executable's directory. */
std::string
binaryPath(const std::string& name)
{
    const char* candidates[] = {"../tools/", "./build/tools/",
                                "build/tools/"};
    for (const char* dir : candidates) {
        const std::string path = std::string(dir) + name;
        if (FILE* f = std::fopen(path.c_str(), "rb")) {
            std::fclose(f);
            return path;
        }
    }
    return "";
}

int
runCommand(const std::string& command)
{
    const int status = std::system((command + " > /dev/null 2>&1").c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

} // namespace

TEST(SmokeObservability, TraceAndMetricsFilesAreValid)
{
    const std::string gen = binaryPath("egraph_gen");
    const std::string extract = binaryPath("smoothe_extract");
    if (gen.empty() || extract.empty())
        GTEST_SKIP() << "tool binaries not found relative to cwd";

    ASSERT_EQ(runCommand(gen + " --family maxsat --scale 0.05 --seed 7 "
                               "--out /tmp"),
              0);

    const std::string trace = "/tmp/smoothe_obs_trace.json";
    const std::string metrics = "/tmp/smoothe_obs_metrics.json";
    ASSERT_EQ(runCommand(extract +
                         " --input /tmp/maxsat_0.json --extractor smoothe "
                         "--max-iters 30 --seeds 4 --time-limit 20 "
                         "--trace-out " + trace + " --metrics-out " +
                         metrics),
              0);

    // Trace: valid JSON, traceEvents array, optimizer phase spans present.
    auto traceText = smoothe::util::readFile(trace);
    ASSERT_TRUE(traceText.has_value());
    auto traceDoc = smoothe::util::Json::parse(*traceText);
    ASSERT_TRUE(traceDoc.has_value());
    const smoothe::util::Json* events = traceDoc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_GT(events->asArray().size(), 0u);

    std::set<std::string> spanNames;
    for (const smoothe::util::Json& event : events->asArray()) {
        ASSERT_NE(event.find("ph"), nullptr);
        ASSERT_NE(event.find("name"), nullptr);
        if (event.find("ph")->asString() == "X") {
            EXPECT_GE(event.find("dur")->asNumber(), 0.0);
            spanNames.insert(event.find("name")->asString());
        }
    }
    for (const char* phase :
         {"softmax", "propagate", "penalty", "adam", "sampling",
          "iteration"}) {
        EXPECT_TRUE(spanNames.count(phase)) << "missing span: " << phase;
    }

    // Metrics: valid JSON with nonzero headline numbers.
    auto metricsText = smoothe::util::readFile(metrics);
    ASSERT_TRUE(metricsText.has_value());
    auto metricsDoc = smoothe::util::Json::parse(*metricsText);
    ASSERT_TRUE(metricsDoc.has_value());
    ASSERT_TRUE(metricsDoc->isObject());
    for (const char* name :
         {"smoothe.iterations", "tape.nodes", "sampler.valid_rate",
          "kernel.softmax.calls"}) {
        const smoothe::util::Json* value = metricsDoc->find(name);
        ASSERT_NE(value, nullptr) << "missing metric: " << name;
        EXPECT_GT(value->asNumber(), 0.0) << name;
    }

    std::remove(trace.c_str());
    std::remove(metrics.c_str());
}

TEST(SmokeObservability, UnknownFlagsAreRejected)
{
    const std::string gen = binaryPath("egraph_gen");
    const std::string extract = binaryPath("smoothe_extract");
    if (gen.empty() || extract.empty())
        GTEST_SKIP() << "tool binaries not found relative to cwd";

    EXPECT_EQ(runCommand(extract +
                         " --input /tmp/maxsat_0.json --extractor smoothe "
                         "--thyme-limit 5"),
              2);
    EXPECT_EQ(runCommand(gen + " --family maxsat --scale 0.05 --out /tmp "
                               "--seeeed 7"),
              2);
}
