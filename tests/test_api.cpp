/**
 * @file
 * Tests for the top-level factory API and the CLI tool workflows
 * (load JSON e-graph -> extract by name -> dump selection).
 */

#include <gtest/gtest.h>

#include "api/factory.hpp"
#include "datasets/generators.hpp"
#include "egraph/serialize.hpp"
#include "util/json.hpp"

namespace api = smoothe::api;
namespace ds = smoothe::datasets;
namespace eg = smoothe::eg;
namespace ex = smoothe::extract;

TEST(Factory, ListsAllExtractors)
{
    const auto& names = api::extractorNames();
    EXPECT_EQ(names.size(), 8u);
    EXPECT_EQ(names.front(), "heuristic");
    EXPECT_EQ(names.back(), "smoothe");
}

TEST(Factory, UnknownNameReturnsNull)
{
    EXPECT_EQ(api::makeExtractor("gurobi"), nullptr);
    EXPECT_EQ(api::makeExtractor(""), nullptr);
}

class FactoryExtractorTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(FactoryExtractorTest, ConstructsAndExtracts)
{
    auto extractor = api::makeExtractor(GetParam());
    ASSERT_NE(extractor, nullptr) << GetParam();

    const eg::EGraph g = ds::paperExampleEGraph();
    ex::ExtractOptions options;
    options.seed = 1;
    options.timeLimitSeconds = 5.0;
    const auto result = extractor->extract(g, options);
    ASSERT_TRUE(result.ok()) << GetParam();
    EXPECT_TRUE(ex::validate(g, result.selection).ok()) << GetParam();
    EXPECT_LE(result.cost, 32.0) << GetParam();
    EXPECT_GE(result.cost, 19.0 - 1e-6) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllExtractors, FactoryExtractorTest,
                         ::testing::ValuesIn(api::extractorNames()));

TEST(CliWorkflow, JsonInJsonOut)
{
    // The smoothe_extract tool's logic: file -> graph -> extract -> dump.
    const eg::EGraph original = ds::paperExampleEGraph();
    const std::string path = "/tmp/smoothe_api_test_egraph.json";
    ASSERT_TRUE(eg::saveToFile(original, path));

    std::string error;
    auto loaded = eg::loadFromFile(path, &error);
    ASSERT_TRUE(loaded.has_value()) << error;

    auto extractor = api::makeExtractor("ilp-strong");
    const auto result = extractor->extract(*loaded, {});
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result.cost, 19.0);

    // Dump the selection like the CLI does and re-parse it.
    smoothe::util::Json choices = smoothe::util::Json::makeObject();
    for (eg::ClassId cls = 0; cls < loaded->numClasses(); ++cls) {
        if (result.selection.chosen(cls)) {
            choices.set(std::to_string(cls),
                        static_cast<double>(result.selection.choice[cls]));
        }
    }
    const std::string dumped = choices.dump();
    auto parsed = smoothe::util::Json::parse(dumped);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->asObject().size(), 6u); // 6 needed classes
}
