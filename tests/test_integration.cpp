/**
 * @file
 * Cross-module integration tests: all extractors agree on optima of small
 * graphs, the eqsat -> extraction pipeline, non-linear (MLP) extraction
 * end to end, and serialization through the full stack.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "costmodel/cost_model.hpp"
#include "datasets/eqsat_grown.hpp"
#include "datasets/generators.hpp"
#include "datasets/nphard.hpp"
#include "egraph/serialize.hpp"
#include "eqsat/mut_egraph.hpp"
#include "extraction/bottom_up.hpp"
#include "extraction/genetic.hpp"
#include "ilp/ilp_extractor.hpp"
#include "smoothe/smoothe.hpp"

namespace cm = smoothe::cost;
namespace core = smoothe::core;
namespace ds = smoothe::datasets;
namespace eg = smoothe::eg;
namespace es = smoothe::eqsat;
namespace ex = smoothe::extract;
namespace il = smoothe::ilp;

TEST(Integration, AllExtractorsValidOnSmallRandomGraphs)
{
    smoothe::util::Rng rng(1001);
    for (int trial = 0; trial < 3; ++trial) {
        ds::FamilyParams params = ds::flexcParams();
        params.numClasses = 40;
        params.cycleFraction = trial == 2 ? 0.05 : 0.0;
        const eg::EGraph g = ds::generateStructured(params, rng.next());

        il::IlpExtractor ilp(il::IlpPreset::Strong);
        ex::ExtractOptions ilpOptions;
        ilpOptions.timeLimitSeconds = 10.0;
        const auto optimal = ilp.extract(g, ilpOptions);
        ASSERT_TRUE(optimal.ok());

        ex::BottomUpExtractor heuristic;
        ex::FasterBottomUpExtractor heuristicPlus;
        ex::GeneticExtractor genetic;
        core::SmoothEConfig config;
        config.numSeeds = 8;
        config.maxIterations = 80;
        core::SmoothEExtractor smoothe(config);

        ex::ExtractOptions options;
        options.seed = 42;
        for (ex::Extractor* extractor :
             std::initializer_list<ex::Extractor*>{
                 &heuristic, &heuristicPlus, &genetic, &smoothe}) {
            const auto result = extractor->extract(g, options);
            ASSERT_TRUE(result.ok()) << extractor->name();
            EXPECT_TRUE(ex::validate(g, result.selection).ok())
                << extractor->name();
            // Nobody beats the proven optimum.
            if (optimal.status == ex::SolveStatus::Optimal) {
                EXPECT_GE(result.cost, optimal.cost - 1e-6)
                    << extractor->name();
            }
        }
    }
}

TEST(Integration, EqsatToExtractionPipeline)
{
    // Grow the paper's example with eqsat, export with Figure 2's costs,
    // and check the extractor hierarchy: heuristic 27, ILP/SmoothE 19.
    es::MutEGraph mut;
    auto term = es::parseTerm("(+ (square (sec a)) (tan a))");
    ASSERT_TRUE(term.has_value());
    const auto root = mut.addTerm(**term);
    const std::vector<es::Rewrite> rules = {
        es::rewrite("sec-to-cos", "(sec ?x)", "(recip (cos ?x))"),
        es::rewrite("sec2-to-tan2", "(square (sec ?x))",
                    "(+ one (square (tan ?x)))"),
    };
    mut.run(rules, {});

    const eg::EGraph g = mut.exportGraph(
        root, [](const std::string& op, std::size_t) -> double {
            if (op == "a" || op == "one")
                return 0.0;
            if (op == "+")
                return 2.0;
            if (op == "square" || op == "recip")
                return 5.0;
            return 10.0; // sec, cos, tan
        });

    ex::BottomUpExtractor heuristic;
    const auto heuristicResult = heuristic.extract(g, {});
    ASSERT_TRUE(heuristicResult.ok());
    EXPECT_DOUBLE_EQ(heuristicResult.cost, 27.0);

    il::IlpExtractor ilp(il::IlpPreset::Strong);
    const auto ilpResult = ilp.extract(g, {});
    ASSERT_EQ(ilpResult.status, ex::SolveStatus::Optimal);
    EXPECT_DOUBLE_EQ(ilpResult.cost, 19.0);

    core::SmoothEConfig config;
    config.numSeeds = 8;
    config.maxIterations = 120;
    core::SmoothEExtractor smoothe(config);
    ex::ExtractOptions options;
    options.seed = 8;
    const auto smootheResult = smoothe.extract(g, options);
    ASSERT_TRUE(smootheResult.ok());
    EXPECT_LE(smootheResult.cost, 19.0 + 1e-6);
}

TEST(Integration, NonlinearMlpExtractionEndToEnd)
{
    // Section 5.5 pipeline: train an MLP correction on synthetic data,
    // then extract with SmoothE vs genetic vs the linear-oracle (ILP*).
    ds::FamilyParams params = ds::roverParams();
    params.numClasses = 40;
    const eg::EGraph g = ds::generateStructured(params, 2024);

    smoothe::util::Rng rng(5);
    auto linear = std::make_shared<cm::LinearCost>(g);
    auto mlp = std::make_shared<cm::MlpCost>(g.numNodes(), rng);
    smoothe::util::Rng trainRng(6);
    mlp->trainSynthetic(g, 24, 40, trainRng);
    const cm::CompositeCost composite(linear, mlp, 1.0f);

    // SmoothE on the composite objective.
    core::SmoothEConfig config;
    config.numSeeds = 8;
    config.maxIterations = 80;
    core::SmoothEExtractor smoothe(config);
    ex::ExtractOptions options;
    options.seed = 9;
    const auto smootheResult =
        smoothe.extractWithCost(g, composite, options);
    ASSERT_TRUE(smootheResult.ok());
    EXPECT_TRUE(ex::validate(g, smootheResult.selection).ok());

    // Genetic on the same objective.
    ex::GeneticExtractor genetic;
    const auto geneticResult = genetic.extractWithCost(
        g,
        [&](const eg::EGraph& graph, const ex::Selection& sel) {
            return composite.discrete(sel.toNodeIndicator(graph));
        },
        options);
    ASSERT_TRUE(geneticResult.ok());

    // ILP* proxy: linear-oracle solution re-scored under the full model.
    il::IlpExtractor ilp(il::IlpPreset::Strong);
    ex::ExtractOptions ilpOptions;
    ilpOptions.timeLimitSeconds = 10.0;
    const auto linearOracle = ilp.extract(g, ilpOptions);
    ASSERT_TRUE(linearOracle.ok());
    const double ilpStar =
        composite.discrete(linearOracle.selection.toNodeIndicator(g));

    // SmoothE optimizes the true objective, so it should not lose badly
    // to the linear-oracle re-scoring.
    EXPECT_LE(smootheResult.cost, ilpStar + 0.2 * std::fabs(ilpStar) + 2.0);
}

TEST(Integration, SerializationSurvivesFullPipeline)
{
    ds::FamilyParams params = ds::tensatParams();
    params.numClasses = 50;
    const eg::EGraph original = ds::generateStructured(params, 3030);
    const std::string json = eg::toJson(original);
    std::string error;
    const auto loaded = eg::fromJson(json, &error);
    ASSERT_TRUE(loaded.has_value()) << error;

    // Extraction on the round-tripped graph gives the same optimum.
    il::IlpExtractor ilp(il::IlpPreset::Strong);
    ex::ExtractOptions options;
    options.timeLimitSeconds = 10.0;
    const auto a = ilp.extract(original, options);
    const auto b = ilp.extract(*loaded, options);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    if (a.status == ex::SolveStatus::Optimal &&
        b.status == ex::SolveStatus::Optimal) {
        EXPECT_NEAR(a.cost, b.cost, 1e-9);
    }
}

TEST(Integration, EqsatGrownFirEndToEnd)
{
    // Full realistic pipeline: FIR kernel -> datapath saturation ->
    // extraction. MAC fusion must let global extractors beat the original
    // implementation, and ILP/SmoothE must agree on small instances.
    smoothe::util::Rng rng(606);
    const eg::EGraph g = ds::growFirEGraph(4, 4000, rng);

    il::IlpExtractor ilp(il::IlpPreset::Strong);
    ex::ExtractOptions ilpOptions;
    ilpOptions.timeLimitSeconds = 20.0;
    const auto exact = ilp.extract(g, ilpOptions);
    ASSERT_TRUE(exact.ok());
    // Original form: 4 muls (16) + 3 adds (4) = 76; rewrites must help.
    EXPECT_LT(exact.cost, 76.0);

    core::SmoothEConfig config;
    config.numSeeds = 32;
    config.maxIterations = 200;
    core::SmoothEExtractor smoothe(config);
    ex::ExtractOptions options;
    options.seed = 21;
    const auto relaxed = smoothe.extract(g, options);
    ASSERT_TRUE(relaxed.ok());
    EXPECT_TRUE(ex::validate(g, relaxed.selection).ok());
    if (exact.status == ex::SolveStatus::Optimal) {
        EXPECT_GE(relaxed.cost, exact.cost - 1e-6);
    }
    EXPECT_LE(relaxed.cost, exact.cost * 1.3 + 1e-6);
}

TEST(Integration, AdversarialSetCoverHierarchy)
{
    // Table 4's qualitative result: ILP optimal, heuristic much worse,
    // SmoothE in between.
    smoothe::util::Rng rng(4040);
    const auto instance = ds::randomSetCover(60, 14, 5.0, rng);
    const eg::EGraph g = ds::setCoverToEGraph(instance);

    il::IlpExtractor ilp(il::IlpPreset::Strong);
    ex::ExtractOptions ilpOptions;
    ilpOptions.timeLimitSeconds = 20.0;
    const auto optimal = ilp.extract(g, ilpOptions);
    ASSERT_TRUE(optimal.ok());

    ex::BottomUpExtractor heuristic;
    const auto heuristicResult = heuristic.extract(g, {});
    ASSERT_TRUE(heuristicResult.ok());

    core::SmoothEConfig config;
    config.numSeeds = 16;
    config.maxIterations = 150;
    core::SmoothEExtractor smoothe(config);
    ex::ExtractOptions options;
    options.seed = 12;
    const auto smootheResult = smoothe.extract(g, options);
    ASSERT_TRUE(smootheResult.ok());

    EXPECT_GE(heuristicResult.cost, optimal.cost);
    EXPECT_GE(smootheResult.cost, optimal.cost - 1e-9);
    // SmoothE beats the tree heuristic on CSE-rich adversarial inputs.
    EXPECT_LE(smootheResult.cost, heuristicResult.cost + 1e-9);
}
