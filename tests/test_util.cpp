/**
 * @file
 * Unit tests for smoothe::util (RNG, timer, JSON, table, args).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/args.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace su = smoothe::util;

TEST(Rng, Deterministic)
{
    su::Rng a(42);
    su::Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    su::Rng a(1);
    su::Rng b(2);
    bool anyDifferent = false;
    for (int i = 0; i < 10; ++i)
        anyDifferent = anyDifferent || (a.next() != b.next());
    EXPECT_TRUE(anyDifferent);
}

TEST(Rng, UniformInRange)
{
    su::Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanRoughlyHalf)
{
    su::Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAll)
{
    su::Rng rng(3);
    std::vector<int> histogram(5, 0);
    for (int i = 0; i < 5000; ++i)
        ++histogram[rng.uniformIndex(5)];
    for (int count : histogram)
        EXPECT_GT(count, 700);
}

TEST(Rng, NormalMoments)
{
    su::Rng rng(13);
    double sum = 0.0;
    double sumSq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sumSq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sumSq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliProbability)
{
    su::Rng rng(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    su::Rng rng(19);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    std::vector<int> histogram(3, 0);
    for (int i = 0; i < 40000; ++i)
        ++histogram[rng.weightedIndex(weights)];
    EXPECT_EQ(histogram[1], 0);
    EXPECT_NEAR(static_cast<double>(histogram[2]) / histogram[0], 3.0, 0.3);
}

TEST(Rng, ShufflePreservesElements)
{
    su::Rng rng(23);
    std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
    auto shuffled = items;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, items);
}

TEST(Rng, ForkIndependent)
{
    su::Rng parent(29);
    su::Rng child = parent.fork();
    EXPECT_NE(parent.next(), child.next());
}

TEST(Timer, MeasuresElapsed)
{
    su::Timer timer;
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i)
        sink = sink + std::sqrt(static_cast<double>(i));
    EXPECT_GE(timer.seconds(), 0.0);
    (void)sink;
}

TEST(Deadline, UnlimitedNeverExpires)
{
    su::Deadline deadline(0.0);
    EXPECT_FALSE(deadline.expired());
    EXPECT_TRUE(std::isinf(deadline.remaining()));
}

TEST(Deadline, TinyBudgetExpires)
{
    su::Deadline deadline(1e-9);
    volatile double sink = 0.0;
    for (int i = 0; i < 10000; ++i)
        sink = sink + i;
    EXPECT_TRUE(deadline.expired());
    (void)sink;
}

// PhaseProfiler moved to src/obs/; its tests now live in test_obs.cpp.

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(su::Json::parse("null")->isNull());
    EXPECT_TRUE(su::Json::parse("true")->asBool());
    EXPECT_FALSE(su::Json::parse("false")->asBool());
    EXPECT_DOUBLE_EQ(su::Json::parse("3.25")->asNumber(), 3.25);
    EXPECT_DOUBLE_EQ(su::Json::parse("-17")->asNumber(), -17.0);
    EXPECT_EQ(su::Json::parse("\"hi\"")->asString(), "hi");
}

TEST(Json, ParsesNested)
{
    const std::string text =
        R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})";
    auto doc = su::Json::parse(text);
    ASSERT_TRUE(doc.has_value());
    const su::Json* a = doc->find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    EXPECT_EQ(a->asArray().size(), 3u);
    EXPECT_EQ(a->asArray()[2].find("b")->asString(), "c");
}

TEST(Json, RejectsMalformed)
{
    std::string error;
    EXPECT_FALSE(su::Json::parse("{", &error).has_value());
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(su::Json::parse("[1,]").has_value());
    EXPECT_FALSE(su::Json::parse("12 34").has_value());
    EXPECT_FALSE(su::Json::parse("\"unterminated").has_value());
}

TEST(Json, EscapesRoundTrip)
{
    su::Json value(std::string("line1\nline2\t\"quoted\"\\"));
    auto parsed = su::Json::parse(value.dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->asString(), value.asString());
}

TEST(Json, ObjectRoundTripPreservesOrder)
{
    su::Json obj = su::Json::makeObject();
    obj.set("zebra", 1);
    obj.set("apple", 2);
    obj.set("zebra", 3); // replace, keeps position
    const std::string text = obj.dump();
    EXPECT_LT(text.find("zebra"), text.find("apple"));
    auto parsed = su::Json::parse(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed->find("zebra")->asNumber(), 3.0);
}

TEST(Json, UnicodeEscape)
{
    auto parsed = su::Json::parse(R"("Aé")");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->asString(), "A\xc3\xa9");
}

TEST(Json, PrettyPrintParses)
{
    su::Json obj = su::Json::makeObject();
    su::Json arr = su::Json::makeArray();
    arr.push(1);
    arr.push("two");
    obj.set("list", std::move(arr));
    auto parsed = su::Json::parse(obj.dumpPretty());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("list")->asArray().size(), 2u);
}

TEST(Table, AlignsColumns)
{
    su::TablePrinter table({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"longer-name", "22"});
    std::ostringstream oss;
    table.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(su::formatSeconds(0.0421), "0.04");
    EXPECT_EQ(su::formatSeconds(211.84), "211.8");
    EXPECT_EQ(su::formatPercent(0.044), "4.4%");
    EXPECT_EQ(su::formatPercent(2.2), "220%");
    EXPECT_EQ(su::formatPercent(63.0), "63.0x");
    EXPECT_EQ(su::formatFixed(3.14159, 2), "3.14");
}

TEST(Args, ParsesForms)
{
    const char* argv[] = {"prog", "--alpha", "3", "--beta=x",
                          "--flag", "--gamma=2.5"};
    su::Args args(6, const_cast<char**>(argv));
    EXPECT_EQ(args.getInt("alpha", 0), 3);
    EXPECT_EQ(args.getString("beta", ""), "x");
    EXPECT_TRUE(args.getBool("flag", false));
    EXPECT_DOUBLE_EQ(args.getDouble("gamma", 0.0), 2.5);
    EXPECT_EQ(args.getInt("missing", 9), 9);
    EXPECT_FALSE(args.has("missing"));
}

TEST(Args, TracksUnrecognizedFlags)
{
    const char* argv[] = {"prog", "--alpha", "3", "--typo=1", "--beta", "x"};
    su::Args args(6, const_cast<char**>(argv));
    EXPECT_EQ(args.flags().size(), 3u);

    // Nothing queried yet: everything the user passed is unrecognized.
    EXPECT_EQ(args.unrecognized().size(), 3u);

    args.getInt("alpha", 0);
    args.getString("beta", "");
    args.acknowledge("gamma"); // known flag that was not passed
    const auto unknown = args.unrecognized();
    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_EQ(unknown[0], "typo");
}

TEST(Json, FuzzRandomBytesNeverCrash)
{
    // Failure-injection: the parser must reject (not crash on) arbitrary
    // byte soup, including strings with nested brackets and escapes.
    su::Rng rng(4242);
    const char alphabet[] = "{}[]\",:\\ntf0123456789.eE+-u abc";
    for (int trial = 0; trial < 2000; ++trial) {
        std::string input;
        const std::size_t length = rng.uniformIndex(40);
        for (std::size_t i = 0; i < length; ++i)
            input.push_back(
                alphabet[rng.uniformIndex(sizeof(alphabet) - 1)]);
        std::string error;
        const auto result = su::Json::parse(input, &error);
        if (result.has_value()) {
            // Whatever parsed must re-serialize and re-parse.
            const auto round = su::Json::parse(result->dump());
            EXPECT_TRUE(round.has_value()) << input;
        }
    }
}

TEST(Json, DeepNestingIsBounded)
{
    std::string deep(2000, '[');
    deep += std::string(2000, ']');
    std::string error;
    EXPECT_FALSE(su::Json::parse(deep, &error).has_value());
    EXPECT_NE(error.find("deep"), std::string::npos);
}

TEST(FileIo, RoundTrip)
{
    const std::string path = "/tmp/smoothe_test_file.json";
    EXPECT_TRUE(su::writeFile(path, "{\"x\": 1}"));
    auto text = su::readFile(path);
    ASSERT_TRUE(text.has_value());
    EXPECT_EQ(*text, "{\"x\": 1}");
    EXPECT_FALSE(su::readFile("/nonexistent/definitely/missing").has_value());
}
