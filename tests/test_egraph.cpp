/**
 * @file
 * Unit tests for the e-graph data structure, serialization, and graph
 * algorithms (SCC, pruning, reachability).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "egraph/egraph.hpp"
#include "egraph/serialize.hpp"

namespace eg = smoothe::eg;

namespace {

/** Small diamond: root -> {a, b} -> shared leaf. */
eg::EGraph
diamond()
{
    eg::EGraph g;
    const auto root = g.addClass();
    const auto a = g.addClass();
    const auto b = g.addClass();
    const auto leaf = g.addClass();
    g.addNode(root, "+", {a, b}, 1.0);
    g.addNode(a, "f", {leaf}, 2.0);
    g.addNode(b, "g", {leaf}, 3.0);
    g.addNode(leaf, "x", {}, 0.5);
    g.setRoot(root);
    EXPECT_FALSE(g.finalize().has_value());
    return g;
}

} // namespace

TEST(EGraph, BuildAndQuery)
{
    eg::EGraph g = diamond();
    EXPECT_EQ(g.numClasses(), 4u);
    EXPECT_EQ(g.numNodes(), 4u);
    EXPECT_EQ(g.root(), 0u);
    EXPECT_EQ(g.node(0).op, "+");
    EXPECT_EQ(g.classOf(0), 0u);
    EXPECT_EQ(g.nodesInClass(3).size(), 1u);
}

TEST(EGraph, ParentIndex)
{
    eg::EGraph g = diamond();
    const auto& leafParents = g.parents(3);
    EXPECT_EQ(leafParents.size(), 2u);
    EXPECT_TRUE(g.parents(0).empty());
}

TEST(EGraph, ParentsDeduplicatedForRepeatedChild)
{
    eg::EGraph g;
    const auto root = g.addClass();
    const auto leaf = g.addClass();
    g.addNode(root, "sq", {leaf, leaf}, 1.0); // x * x
    g.addNode(leaf, "x", {}, 1.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());
    EXPECT_EQ(g.parents(leaf).size(), 1u);
    EXPECT_EQ(g.stats().numEdges, 2u);
}

TEST(EGraph, FinalizeRejectsEmptyClass)
{
    eg::EGraph g;
    const auto root = g.addClass();
    g.addClass(); // left empty
    g.addNode(root, "x", {}, 1.0);
    g.setRoot(root);
    const auto err = g.finalize();
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("empty"), std::string::npos);
}

TEST(EGraph, FinalizeRejectsMissingRoot)
{
    eg::EGraph g;
    const auto cls = g.addClass();
    g.addNode(cls, "x", {}, 1.0);
    EXPECT_TRUE(g.finalize().has_value());
}

TEST(EGraph, FinalizeRejectsBadChildReference)
{
    eg::EGraph g;
    const auto root = g.addClass();
    g.addNode(root, "f", {7}, 1.0);
    g.setRoot(root);
    EXPECT_TRUE(g.finalize().has_value());
}

TEST(EGraph, Stats)
{
    eg::EGraph g = diamond();
    const auto& stats = g.stats();
    EXPECT_EQ(stats.numNodes, 4u);
    EXPECT_EQ(stats.numClasses, 4u);
    EXPECT_EQ(stats.numEdges, 4u);
    EXPECT_DOUBLE_EQ(stats.avgDegree, 1.0);
    EXPECT_DOUBLE_EQ(stats.density, 4.0 / 16.0);
    EXPECT_EQ(stats.numLeaves, 1u);
    EXPECT_EQ(stats.maxClassSize, 1u);
}

TEST(EGraph, SccAcyclic)
{
    eg::EGraph g = diamond();
    const auto sccs = g.classSccs();
    EXPECT_EQ(sccs.size(), 4u);
    for (const auto& scc : sccs)
        EXPECT_EQ(scc.size(), 1u);
    EXPECT_TRUE(g.dependencyGraphIsAcyclic());
}

TEST(EGraph, SccDetectsCycle)
{
    eg::EGraph g;
    const auto root = g.addClass();
    const auto a = g.addClass();
    const auto b = g.addClass();
    g.addNode(root, "r", {a}, 1.0);
    g.addNode(a, "f", {b}, 1.0);
    g.addNode(a, "leafA", {}, 5.0);
    g.addNode(b, "g", {a}, 1.0); // cycle a <-> b
    g.addNode(b, "leafB", {}, 5.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());

    const auto sccs = g.classSccs();
    std::size_t big = 0;
    for (const auto& scc : sccs)
        big = std::max(big, scc.size());
    EXPECT_EQ(big, 2u);
    EXPECT_FALSE(g.dependencyGraphIsAcyclic());
}

TEST(EGraph, SelfLoopIsCyclic)
{
    eg::EGraph g;
    const auto root = g.addClass();
    g.addNode(root, "id", {root}, 0.0);
    g.addNode(root, "x", {}, 1.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());
    EXPECT_FALSE(g.dependencyGraphIsAcyclic());
}

TEST(EGraph, SccReverseTopologicalOrder)
{
    eg::EGraph g = diamond();
    const auto sccs = g.classSccs();
    // Tarjan emits SCCs in reverse topological order: the leaf's component
    // must appear before the root's.
    std::size_t leafPos = 0;
    std::size_t rootPos = 0;
    for (std::size_t i = 0; i < sccs.size(); ++i) {
        if (sccs[i].front() == 3)
            leafPos = i;
        if (sccs[i].front() == 0)
            rootPos = i;
    }
    EXPECT_LT(leafPos, rootPos);
}

TEST(EGraph, ReachableClasses)
{
    eg::EGraph g;
    const auto root = g.addClass();
    const auto a = g.addClass();
    const auto orphan = g.addClass();
    g.addNode(root, "r", {a}, 1.0);
    g.addNode(a, "x", {}, 1.0);
    g.addNode(orphan, "y", {}, 1.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());
    const auto reachable = g.reachableClasses();
    EXPECT_EQ(reachable.size(), 2u);
    EXPECT_EQ(std::count(reachable.begin(), reachable.end(), orphan), 0);
}

TEST(EGraph, PrunedDropsOrphans)
{
    eg::EGraph g;
    const auto root = g.addClass();
    const auto a = g.addClass();
    const auto orphan = g.addClass();
    g.addNode(root, "r", {a}, 1.0);
    g.addNode(a, "x", {}, 1.0);
    g.addNode(orphan, "y", {}, 1.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());
    const eg::EGraph pruned = g.pruned();
    EXPECT_EQ(pruned.numClasses(), 2u);
    EXPECT_EQ(pruned.numNodes(), 2u);
}

TEST(EGraph, PrunedDropsInfeasibleNodes)
{
    eg::EGraph g;
    const auto root = g.addClass();
    const auto dead = g.addClass();
    g.addNode(root, "good", {}, 1.0);
    g.addNode(root, "bad", {dead}, 0.1);
    g.addNode(dead, "self", {dead}, 0.0); // never satisfiable
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());
    const eg::EGraph pruned = g.pruned();
    EXPECT_EQ(pruned.numClasses(), 1u);
    EXPECT_EQ(pruned.numNodes(), 1u);
    EXPECT_EQ(pruned.node(0).op, "good");
}

TEST(EGraph, PrunedKeepsCyclesWithEscape)
{
    eg::EGraph g;
    const auto root = g.addClass();
    const auto a = g.addClass();
    g.addNode(root, "r", {a}, 1.0);
    g.addNode(a, "rec", {a}, 0.0); // cyclic alternative
    g.addNode(a, "base", {}, 2.0); // escape hatch
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());
    const eg::EGraph pruned = g.pruned();
    // Both the cyclic and base nodes stay (class a is feasible via base).
    EXPECT_EQ(pruned.numClasses(), 2u);
    EXPECT_EQ(pruned.numNodes(), 3u);
}

TEST(EGraph, PrunedIsIdempotent)
{
    eg::EGraph g;
    const auto root = g.addClass();
    const auto a = g.addClass();
    const auto orphan = g.addClass();
    const auto dead = g.addClass();
    g.addNode(root, "r", {a}, 1.0);
    g.addNode(root, "bad", {dead}, 0.1);
    g.addNode(a, "x", {}, 1.0);
    g.addNode(orphan, "y", {}, 1.0);
    g.addNode(dead, "self", {dead}, 0.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());

    const eg::EGraph once = g.pruned();
    const eg::EGraph twice = once.pruned();
    EXPECT_EQ(once.numNodes(), twice.numNodes());
    EXPECT_EQ(once.numClasses(), twice.numClasses());
    EXPECT_EQ(once.stats().numEdges, twice.stats().numEdges);
}

TEST(EGraph, PrunedInfeasibleRootYieldsStub)
{
    eg::EGraph g;
    const auto root = g.addClass();
    g.addNode(root, "self", {root}, 1.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());
    const eg::EGraph pruned = g.pruned();
    // Degenerate graphs collapse to the documented infeasible stub.
    EXPECT_EQ(pruned.numClasses(), 1u);
    EXPECT_EQ(pruned.node(0).op, "<infeasible>");
}

TEST(EGraph, SccPartitionsAllClasses)
{
    // Property: SCC decomposition is a partition — every class appears in
    // exactly one component — on a larger random cyclic graph.
    // (Constructed inline to avoid a datasets dependency cycle.)
    eg::EGraph g;
    const std::size_t m = 60;
    for (std::size_t i = 0; i < m; ++i)
        g.addClass();
    // Chain with alternatives and a few back edges.
    for (eg::ClassId cls = 0; cls + 1 < m; ++cls) {
        g.addNode(cls, "f", {static_cast<eg::ClassId>(cls + 1)}, 1.0);
        if (cls % 7 == 3 && cls >= 5) {
            g.addNode(cls, "back",
                      {static_cast<eg::ClassId>(cls - 5)}, 1.0);
        }
    }
    g.addNode(m - 1, "leaf", {}, 1.0);
    g.setRoot(0);
    ASSERT_FALSE(g.finalize().has_value());

    const auto sccs = g.classSccs();
    std::vector<int> seen(m, 0);
    for (const auto& scc : sccs) {
        for (eg::ClassId cls : scc)
            ++seen[cls];
    }
    for (std::size_t i = 0; i < m; ++i)
        EXPECT_EQ(seen[i], 1) << "class " << i;
    EXPECT_FALSE(g.dependencyGraphIsAcyclic());
}

TEST(Serialize, RoundTrip)
{
    eg::EGraph g = diamond();
    const std::string json = eg::toJson(g, /*pretty=*/true);
    std::string error;
    auto loaded = eg::fromJson(json, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(loaded->numNodes(), g.numNodes());
    EXPECT_EQ(loaded->numClasses(), g.numClasses());
    EXPECT_EQ(loaded->stats().numEdges, g.stats().numEdges);

    // Costs survive.
    double total = 0.0;
    for (eg::NodeId nid = 0; nid < loaded->numNodes(); ++nid)
        total += loaded->node(nid).cost;
    EXPECT_DOUBLE_EQ(total, 6.5);
}

TEST(Serialize, FileRoundTrip)
{
    eg::EGraph g = diamond();
    const std::string path = "/tmp/smoothe_test_egraph.json";
    ASSERT_TRUE(eg::saveToFile(g, path));
    std::string error;
    auto loaded = eg::loadFromFile(path, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(loaded->numNodes(), 4u);
}

TEST(Serialize, RejectsGarbage)
{
    std::string error;
    EXPECT_FALSE(eg::fromJson("not json", &error).has_value());
    EXPECT_FALSE(eg::fromJson("{}", &error).has_value());
    EXPECT_FALSE(
        eg::fromJson(R"({"nodes": {}, "root_eclasses": []})", &error)
            .has_value());
    EXPECT_FALSE(
        eg::fromJson(
            R"({"nodes": {"0": {"op": "x", "children": ["99"],
                "eclass": "c0", "cost": 1}}, "root_eclasses": ["c0"]})",
            &error)
            .has_value());
}

TEST(Serialize, AcceptsNodeIdAsRootReference)
{
    // Some gym dumps put a node id (not a class id) in root_eclasses.
    const std::string text = R"({
        "nodes": {
            "n0": {"op": "x", "children": [], "eclass": "c0", "cost": 1.0}
        },
        "root_eclasses": ["n0"]
    })";
    std::string error;
    auto graph = eg::fromJson(text, &error);
    ASSERT_TRUE(graph.has_value()) << error;
    EXPECT_EQ(graph->numClasses(), 1u);
    EXPECT_EQ(graph->root(), 0u);
}

TEST(Serialize, DefaultsMissingOpAndCost)
{
    const std::string text = R"({
        "nodes": {
            "n0": {"children": [], "eclass": "c0"}
        },
        "root_eclasses": ["c0"]
    })";
    std::string error;
    auto graph = eg::fromJson(text, &error);
    ASSERT_TRUE(graph.has_value()) << error;
    EXPECT_EQ(graph->node(0).op, "?");
    EXPECT_DOUBLE_EQ(graph->node(0).cost, 1.0);
}

TEST(Serialize, AcceptsGymStyleDocument)
{
    const std::string text = R"({
        "nodes": {
            "n0": {"op": "+", "children": ["n1", "n2"], "eclass": "c0",
                   "cost": 1.0},
            "n1": {"op": "a", "children": [], "eclass": "c1", "cost": 2.0},
            "n2": {"op": "b", "children": [], "eclass": "c2", "cost": 3.0},
            "n3": {"op": "a2", "children": [], "eclass": "c1", "cost": 1.5}
        },
        "root_eclasses": ["c0"]
    })";
    std::string error;
    auto graph = eg::fromJson(text, &error);
    ASSERT_TRUE(graph.has_value()) << error;
    EXPECT_EQ(graph->numNodes(), 4u);
    EXPECT_EQ(graph->numClasses(), 3u);
    EXPECT_EQ(graph->nodesInClass(graph->root()).size(), 1u);
}
