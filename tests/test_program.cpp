/**
 * @file
 * Compiled Program tests: a recorded tape replayed through ad::Program
 * must be bit-identical to rebuilding the tape eagerly every iteration —
 * forward values, Param gradients, and whole Adam trajectories — on
 * randomized small e-graphs, at pool sizes 1 and 4 (extending the PR 3
 * determinism contract). Also covers the buffer-plan invariants (fusion
 * fired, planned bytes below one eager iteration) and the named input
 * slot that drives the lambda warmup ramp without re-recording.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "autodiff/adam.hpp"
#include "autodiff/program.hpp"
#include "autodiff/tape.hpp"
#include "egraph/egraph.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ad = smoothe::ad;
namespace eg = smoothe::eg;
namespace st = smoothe::tensor;
namespace util = smoothe::util;
using ad::Param;
using ad::Tape;
using ad::Tensor;
using ad::VarId;

namespace {

Tensor
randomTensor(std::size_t rows, std::size_t cols, util::Rng& rng,
             double lo = -1.0, double hi = 1.0)
{
    Tensor t(rows, cols);
    for (std::size_t i = 0; i < t.size(); ++i)
        t.data()[i] = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

bool
bitwiseEqual(const Tensor& a, const Tensor& b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(float)) == 0;
}

/** A small random DAG e-graph: children always point to later classes. */
eg::EGraph
randomEGraph(util::Rng& rng)
{
    eg::EGraph g;
    const std::size_t classes =
        static_cast<std::size_t>(rng.uniformInt(3, 6));
    for (std::size_t c = 0; c < classes; ++c)
        g.addClass();
    for (std::size_t c = 0; c < classes; ++c) {
        const std::size_t nodes =
            static_cast<std::size_t>(rng.uniformInt(1, 3));
        for (std::size_t n = 0; n < nodes; ++n) {
            std::vector<eg::ClassId> children;
            for (std::size_t k = c + 1; k < classes; ++k) {
                if (rng.bernoulli(0.5))
                    children.push_back(static_cast<eg::ClassId>(k));
            }
            g.addNode(static_cast<eg::ClassId>(c), "op", children,
                      rng.uniform(0.5, 4.0));
        }
    }
    g.setRoot(0);
    EXPECT_FALSE(g.finalize().has_value());
    return g;
}

/** Handles into one recorded forward pass. */
struct Handles
{
    VarId loss = -1;
    VarId cp = -1;
    VarId penalty = -1;
    VarId lambda = -1;
};

/**
 * The SmoothE-shaped pipeline over a random e-graph: softmax per class,
 * probability propagation, a non-linear (matmul/relu) head, and a
 * NOTEARS trace penalty whose coefficient enters through the "lambda"
 * input slot. Structures and Params live here so recorded pointers stay
 * valid for the Program's lifetime.
 */
struct Pipeline
{
    st::SegmentIndex members;  ///< class -> its e-node columns
    st::SegmentIndex parents;  ///< class -> parent e-node columns
    std::vector<std::uint32_t> node2class;
    std::vector<ad::MatrixEntry> entries; ///< cp -> class adjacency
    std::size_t dim = 0;
    Tensor q0, notRoot, rootMask;
    std::vector<float> headWeights;
    std::size_t propIters = 3;
    std::size_t batch = 2;
    Param theta;
    Param w;
    Param bias;

    Pipeline(const eg::EGraph& g, util::Rng& rng)
    {
        const std::size_t n = g.numNodes();
        const std::size_t c = g.numClasses();
        dim = c;
        std::vector<std::uint32_t> assignment(n);
        for (eg::NodeId id = 0; id < n; ++id)
            assignment[id] = g.classOf(id);
        members = st::SegmentIndex::fromAssignment(assignment, c);
        node2class = assignment;
        parents.offsets.push_back(0);
        for (eg::ClassId cls = 0; cls < c; ++cls) {
            for (eg::NodeId parent : g.parents(cls))
                parents.items.push_back(parent);
            parents.offsets.push_back(
                static_cast<std::uint32_t>(parents.items.size()));
        }
        for (eg::NodeId id = 0; id < n; ++id) {
            for (eg::ClassId child : g.node(id).children) {
                entries.push_back({static_cast<std::uint32_t>(id),
                                   static_cast<std::uint32_t>(
                                       g.classOf(id) * dim + child)});
            }
        }
        batch = static_cast<std::size_t>(rng.uniformInt(1, 3));
        q0 = Tensor(batch, c);
        for (std::size_t row = 0; row < batch; ++row)
            q0.at(row, g.root()) = 1.0f;
        notRoot = Tensor(1, c, 1.0f);
        notRoot.at(0, g.root()) = 0.0f;
        rootMask = Tensor(1, c);
        rootMask.at(0, g.root()) = 1.0f;
        const std::size_t hidden = 4;
        for (std::size_t h = 0; h < hidden; ++h)
            headWeights.push_back(
                static_cast<float>(rng.uniform(0.2, 2.0)));
        theta = Param(randomTensor(batch, n, rng, -1.0, 1.0));
        w = Param(randomTensor(n, hidden, rng, -0.5, 0.5));
        bias = Param(randomTensor(1, hidden, rng, -0.2, 0.2));
    }

    Handles
    build(Tape& tape, float eff_lambda)
    {
        Handles h;
        const VarId thetaVar = tape.leaf(&theta);
        h.cp = tape.segmentSoftmax(thetaVar, &members);
        VarId q = tape.constant(q0);
        VarId p = -1;
        for (std::size_t t = 0; t < propIters; ++t) {
            p = tape.mul(h.cp, tape.gatherCols(q, &node2class));
            const VarId prod =
                tape.segmentProductComplement(p, &parents);
            const VarId ind =
                tape.addScalar(tape.scale(prod, -1.0f), 1.0f);
            q = tape.addConst(tape.mulConst(ind, notRoot), rootMask);
        }
        p = tape.mul(h.cp, tape.gatherCols(q, &node2class));
        VarId head = tape.matmul(p, tape.leaf(&w));
        head = tape.relu(tape.addRowBroadcast(head, tape.leaf(&bias)));
        VarId loss = tape.sumAll(tape.dotRowsConst(head, headWeights));
        const VarId a = tape.scatterMatrix(h.cp, &entries, dim, true);
        const VarId tr = tape.trExpm(a, dim);
        h.penalty = tape.addScalar(tape.sumAll(tr),
                                   -static_cast<float>(dim));
        Tensor coeff(1, 1);
        coeff.at(0, 0) = eff_lambda;
        h.lambda = tape.input(std::move(coeff), "lambda");
        loss = tape.add(loss, tape.mul(h.penalty, h.lambda));
        h.loss = loss;
        return h;
    }

    std::vector<Param*>
    params()
    {
        return {&theta, &w, &bias};
    }
};

constexpr std::size_t kIterations = 8;
constexpr std::size_t kWarmup = 5;
constexpr float kLambda = 2.0f;

float
rampedLambda(std::size_t iter)
{
    float lambda = kLambda;
    if (iter < kWarmup) {
        lambda *= static_cast<float>(iter + 1) /
                  static_cast<float>(kWarmup);
    }
    return lambda;
}

/** One optimization trajectory: per-iteration loss, grads, and theta. */
struct Trajectory
{
    std::vector<Tensor> losses;
    std::vector<Tensor> thetaGrads;
    std::vector<Tensor> wGrads;
    std::vector<Tensor> thetas;
};

Trajectory
runEager(Pipeline& pl)
{
    Trajectory out;
    ad::Adam optimizer(pl.params(), ad::AdamConfig{});
    for (std::size_t iter = 0; iter < kIterations; ++iter) {
        // smoothe-lint: allow(tape-in-loop) — the reference rebuild
        Tape tape;
        const Handles h = pl.build(tape, rampedLambda(iter));
        optimizer.zeroGrad();
        tape.backward(h.loss);
        out.losses.push_back(tape.value(h.loss));
        out.thetaGrads.push_back(pl.theta.grad);
        out.wGrads.push_back(pl.w.grad);
        optimizer.step();
        out.thetas.push_back(pl.theta.value);
    }
    return out;
}

Trajectory
runCompiled(Pipeline& pl)
{
    Trajectory out;
    ad::Adam optimizer(pl.params(), ad::AdamConfig{});
    Tape recorder;
    const Handles h = pl.build(recorder, rampedLambda(0));
    ad::Program program(std::move(recorder), h.loss,
                        {h.cp, h.penalty});
    EXPECT_TRUE(program.hasInput("lambda"));
    for (std::size_t iter = 0; iter < kIterations; ++iter) {
        program.setInputScalar("lambda", rampedLambda(iter));
        program.forward();
        optimizer.zeroGrad();
        program.backward();
        out.losses.push_back(program.value(h.loss));
        out.thetaGrads.push_back(pl.theta.grad);
        out.wGrads.push_back(pl.w.grad);
        optimizer.step();
        out.thetas.push_back(pl.theta.value);
    }
    return out;
}

void
expectBitwiseEqual(const Trajectory& a, const Trajectory& b)
{
    ASSERT_EQ(a.losses.size(), b.losses.size());
    for (std::size_t i = 0; i < a.losses.size(); ++i) {
        EXPECT_TRUE(bitwiseEqual(a.losses[i], b.losses[i]))
            << "loss diverged at iteration " << i;
        EXPECT_TRUE(bitwiseEqual(a.thetaGrads[i], b.thetaGrads[i]))
            << "theta grad diverged at iteration " << i;
        EXPECT_TRUE(bitwiseEqual(a.wGrads[i], b.wGrads[i]))
            << "w grad diverged at iteration " << i;
        EXPECT_TRUE(bitwiseEqual(a.thetas[i], b.thetas[i]))
            << "theta diverged at iteration " << i;
    }
}

} // namespace

TEST(ProgramParity, ReplayMatchesEagerBitwiseOnRandomEGraphs)
{
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        util::ThreadPool::setGlobalThreads(threads);
        for (std::uint64_t seed = 1; seed <= 4; ++seed) {
            util::Rng rng(seed);
            const eg::EGraph g = randomEGraph(rng);
            util::Rng eagerRng(seed * 101);
            util::Rng compiledRng(seed * 101);
            Pipeline eager(g, eagerRng);
            Pipeline compiled(g, compiledRng);
            const Trajectory a = runEager(eager);
            const Trajectory b = runCompiled(compiled);
            expectBitwiseEqual(a, b);
        }
    }
    util::ThreadPool::setGlobalThreads(1); // restore for other tests
}

TEST(ProgramParity, ThreadCountDoesNotChangeCompiledResults)
{
    util::Rng graphRng(9);
    const eg::EGraph g = randomEGraph(graphRng);
    auto runAt = [&](std::size_t threads) {
        util::ThreadPool::setGlobalThreads(threads);
        util::Rng rng(77);
        Pipeline pl(g, rng);
        return runCompiled(pl);
    };
    const Trajectory serial = runAt(1);
    const Trajectory parallel = runAt(4);
    util::ThreadPool::setGlobalThreads(1);
    expectBitwiseEqual(serial, parallel);
}

TEST(Program, ReplayTwiceWithoutStepIsIdentical)
{
    util::Rng rng(5);
    const eg::EGraph g = randomEGraph(rng);
    Pipeline pl(g, rng);
    Tape recorder;
    const Handles h = pl.build(recorder, kLambda);
    ad::Program program(std::move(recorder), h.loss, {h.cp});
    program.forward();
    const Tensor first = program.value(h.loss);
    const Tensor firstCp = program.value(h.cp);
    program.forward();
    EXPECT_TRUE(bitwiseEqual(first, program.value(h.loss)));
    EXPECT_TRUE(bitwiseEqual(firstCp, program.value(h.cp)));
}

TEST(Program, PlanFusesAndBeatsEagerFootprint)
{
    util::Rng rng(6);
    const eg::EGraph g = randomEGraph(rng);
    Pipeline pl(g, rng);
    Tape recorder;
    const std::size_t arenaBefore = 0;
    (void)arenaBefore;
    const Handles h = pl.build(recorder, kLambda);
    const std::size_t recorded = recorder.numNodes();
    ad::Program program(std::move(recorder), h.loss, {h.cp});
    const ad::ProgramStats& stats = program.stats();
    // The scale->addScalar and mulConst->addConst chains must have fused.
    EXPECT_GT(stats.fusedOps, 0u);
    // Sources and fused-away nodes drop out of the schedule.
    EXPECT_GT(stats.ops, 0u);
    EXPECT_LT(stats.ops, recorded);
    // The static plan reuses slots, so it must be strictly smaller than
    // what one eager iteration allocates.
    EXPECT_GT(stats.naiveBytes, 0u);
    EXPECT_LT(stats.plannedBytes, stats.naiveBytes);
    EXPECT_GT(stats.reuseRatio(), 1.0);
    EXPECT_GT(stats.valueSlots, 0u);
    EXPECT_GT(stats.gradSlots, 0u);
    EXPECT_FALSE(program.checkInvariants().has_value())
        << *program.checkInvariants();
}

TEST(Program, InputSlotDrivesTheRecordedCoefficient)
{
    util::Rng rng(8);
    const eg::EGraph g = randomEGraph(rng);
    Pipeline pl(g, rng);
    Tape recorder;
    const Handles h = pl.build(recorder, 1.0f);
    ad::Program program(std::move(recorder), h.loss, {h.penalty});
    EXPECT_TRUE(program.hasInput("lambda"));
    EXPECT_FALSE(program.hasInput("mu"));
    program.forward();
    const float base = program.value(h.loss).at(0, 0);
    const float penalty = program.value(h.penalty).at(0, 0);
    program.setInputScalar("lambda", 3.0f);
    program.forward();
    const float scaled = program.value(h.loss).at(0, 0);
    // loss(lambda) = head + lambda * penalty, so the delta is exactly
    // two extra penalties (3x vs 1x).
    EXPECT_NEAR(scaled - base, 2.0f * penalty,
                1e-5f * (1.0f + std::fabs(penalty)));
}
