/**
 * @file
 * Autodiff tests: forward values, analytic vs numeric gradients for every
 * op, matrix exponential correctness, Adam convergence.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/adam.hpp"
#include "autodiff/gradcheck.hpp"
#include "autodiff/matexp.hpp"
#include "autodiff/tape.hpp"
#include "util/rng.hpp"

namespace ad = smoothe::ad;
namespace st = smoothe::tensor;
using ad::Param;
using ad::Tape;
using ad::Tensor;
using ad::VarId;

namespace {

Tensor
randomTensor(std::size_t rows, std::size_t cols, smoothe::util::Rng& rng,
             double lo = -1.0, double hi = 1.0)
{
    Tensor t(rows, cols);
    for (std::size_t i = 0; i < t.size(); ++i)
        t.data()[i] = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

} // namespace

TEST(Matexp, IdentityOnZero)
{
    const std::size_t d = 4;
    std::vector<float> a(d * d, 0.0f);
    std::vector<float> out(d * d);
    ad::expm(a.data(), d, out.data());
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = 0; j < d; ++j)
            EXPECT_NEAR(out[i * d + j], i == j ? 1.0f : 0.0f, 1e-6);
    }
    EXPECT_NEAR(ad::traceExpm(a.data(), d), 4.0, 1e-9);
}

TEST(Matexp, DiagonalMatrix)
{
    const std::size_t d = 3;
    std::vector<float> a(d * d, 0.0f);
    a[0] = 1.0f;
    a[4] = 2.0f;
    a[8] = -0.5f;
    std::vector<float> out(d * d);
    ad::expm(a.data(), d, out.data());
    EXPECT_NEAR(out[0], std::exp(1.0), 1e-4);
    EXPECT_NEAR(out[4], std::exp(2.0), 1e-3);
    EXPECT_NEAR(out[8], std::exp(-0.5), 1e-5);
    EXPECT_NEAR(out[1], 0.0, 1e-6);
}

TEST(Matexp, NilpotentMatrix)
{
    // A = [[0, 1], [0, 0]] -> exp(A) = [[1, 1], [0, 1]].
    std::vector<float> a = {0.0f, 1.0f, 0.0f, 0.0f};
    std::vector<float> out(4);
    ad::expm(a.data(), 2, out.data());
    EXPECT_NEAR(out[0], 1.0, 1e-6);
    EXPECT_NEAR(out[1], 1.0, 1e-6);
    EXPECT_NEAR(out[2], 0.0, 1e-6);
    EXPECT_NEAR(out[3], 1.0, 1e-6);
}

TEST(Matexp, TwoByTwoCycleTrace)
{
    // A = [[0, w], [w, 0]] -> tr(exp(A)) = 2 cosh(w) > 2 when w > 0:
    // the NOTEARS signal for a 2-cycle.
    std::vector<float> a = {0.0f, 0.7f, 0.7f, 0.0f};
    EXPECT_NEAR(ad::traceExpm(a.data(), 2), 2.0 * std::cosh(0.7), 1e-5);
}

TEST(Matexp, LargeNormScaling)
{
    // Norm >> 0.5 exercises scaling-and-squaring.
    std::vector<float> a = {3.0f, 1.0f, 0.0f, 2.0f};
    std::vector<float> out(4);
    ad::expm(a.data(), 2, out.data());
    // Upper triangular: exp keeps triangularity; diag = exp(diag).
    EXPECT_NEAR(out[0], std::exp(3.0), 1e-2);
    EXPECT_NEAR(out[3], std::exp(2.0), 1e-3);
    EXPECT_NEAR(out[2], 0.0, 1e-5);
    // Off-diagonal of exp([[3,1],[0,2]]) = e^3 - e^2.
    EXPECT_NEAR(out[1], std::exp(3.0) - std::exp(2.0), 2e-2);
}

TEST(Matexp, NaiveMatchesOptimized)
{
    smoothe::util::Rng rng(77);
    for (const std::size_t d : {1u, 2u, 5u, 16u}) {
        std::vector<float> a(d * d);
        for (auto& v : a)
            v = static_cast<float>(rng.uniform(-0.5, 1.5));
        std::vector<float> fast(d * d);
        std::vector<float> naive(d * d);
        ad::expm(a.data(), d, fast.data());
        ad::expmNaive(a.data(), d, naive.data());
        for (std::size_t i = 0; i < d * d; ++i)
            EXPECT_NEAR(fast[i], naive[i],
                        1e-4 * (1.0 + std::fabs(fast[i])))
                << "d=" << d << " i=" << i;
    }
}

TEST(Tape, ForwardElementwise)
{
    Tape tape;
    Tensor a(1, 3);
    a.at(0, 0) = 1.0f;
    a.at(0, 1) = -2.0f;
    a.at(0, 2) = 3.0f;
    Tensor b(1, 3, 2.0f);
    const VarId va = tape.constant(a);
    const VarId vb = tape.constant(b);
    EXPECT_FLOAT_EQ(tape.value(tape.add(va, vb)).at(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(tape.value(tape.sub(va, vb)).at(0, 0), -1.0f);
    EXPECT_FLOAT_EQ(tape.value(tape.mul(va, vb)).at(0, 2), 6.0f);
    EXPECT_FLOAT_EQ(tape.value(tape.scale(va, -2.0f)).at(0, 0), -2.0f);
    EXPECT_FLOAT_EQ(tape.value(tape.addScalar(va, 5.0f)).at(0, 1), 3.0f);
    EXPECT_FLOAT_EQ(tape.value(tape.relu(va)).at(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(tape.value(tape.relu(va)).at(0, 2), 3.0f);
}

TEST(Tape, ScalarAndVectorizedAgree)
{
    smoothe::util::Rng rng(5);
    Tensor a = randomTensor(3, 17, rng);
    Tensor b = randomTensor(3, 17, rng);
    Tape fast(st::Backend::Vectorized);
    Tape slow(st::Backend::Scalar);
    const VarId fa = fast.constant(a);
    const VarId fb = fast.constant(b);
    const VarId sa = slow.constant(a);
    const VarId sb = slow.constant(b);
    const VarId f = fast.mul(fast.add(fa, fb), fb);
    const VarId s = slow.mul(slow.add(sa, sb), sb);
    for (std::size_t i = 0; i < 3 * 17; ++i)
        EXPECT_NEAR(fast.value(f).data()[i], slow.value(s).data()[i], 1e-5);
}

TEST(Tape, BackendsAgreeOnMatmulAndTrExpm)
{
    smoothe::util::Rng rng(88);
    Tensor a = randomTensor(3, 5, rng);
    Tensor w = randomTensor(5, 4, rng);
    Tensor m = randomTensor(2, 9, rng, -0.3, 0.8);

    Tape fast(st::Backend::Vectorized);
    Tape slow(st::Backend::Scalar);
    const VarId fm = fast.matmul(fast.constant(a), fast.constant(w));
    const VarId sm = slow.matmul(slow.constant(a), slow.constant(w));
    for (std::size_t i = 0; i < 12; ++i)
        EXPECT_NEAR(fast.value(fm).data()[i], slow.value(sm).data()[i],
                    1e-4);

    const VarId ft = fast.trExpm(fast.constant(m), 3);
    const VarId stv = slow.trExpm(slow.constant(m), 3);
    for (std::size_t r = 0; r < 2; ++r)
        EXPECT_NEAR(fast.value(ft).at(r, 0), slow.value(stv).at(r, 0),
                    1e-3);
}

TEST(Tape, SegmentSoftmaxNormalizes)
{
    // Segments over 5 columns: {0,1}, {2,3,4}.
    st::SegmentIndex segs;
    segs.offsets = {0, 2, 5};
    segs.items = {0, 1, 2, 3, 4};
    smoothe::util::Rng rng(9);
    Param theta{randomTensor(2, 5, rng, -3.0, 3.0)};
    Tape tape;
    const VarId cp = tape.segmentSoftmax(tape.leaf(&theta), &segs);
    const Tensor& v = tape.value(cp);
    for (std::size_t r = 0; r < 2; ++r) {
        EXPECT_NEAR(v.at(r, 0) + v.at(r, 1), 1.0, 1e-5);
        EXPECT_NEAR(v.at(r, 2) + v.at(r, 3) + v.at(r, 4), 1.0, 1e-5);
        for (std::size_t c = 0; c < 5; ++c)
            EXPECT_GT(v.at(r, c), 0.0f);
    }
}

TEST(Tape, GatherAndDotForward)
{
    Tape tape;
    Tensor q(1, 3);
    q.at(0, 0) = 0.1f;
    q.at(0, 1) = 0.5f;
    q.at(0, 2) = 0.9f;
    const std::vector<std::uint32_t> index = {2, 0, 1, 2};
    const VarId g = tape.gatherCols(tape.constant(q), &index);
    EXPECT_FLOAT_EQ(tape.value(g).at(0, 0), 0.9f);
    EXPECT_FLOAT_EQ(tape.value(g).at(0, 3), 0.9f);

    const VarId dot = tape.dotRowsConst(g, {1.0f, 2.0f, 3.0f, 4.0f});
    EXPECT_NEAR(tape.value(dot).at(0, 0),
                0.9 + 0.2 + 1.5 + 3.6, 1e-5);
}

// --- gradient checks per op --------------------------------------------

namespace {

void
expectGradCheck(const std::vector<Param*>& params,
                const ad::GraphBuilder& build)
{
    const auto result = ad::checkGradients(params, build);
    EXPECT_TRUE(result.ok)
        << "max rel error " << result.maxRelError << " at param "
        << result.worstParam << "[" << result.worstIndex << "]";
}

} // namespace

TEST(GradCheck, Elementwise)
{
    smoothe::util::Rng rng(21);
    Param a{randomTensor(2, 4, rng)};
    Param b{randomTensor(2, 4, rng)};
    expectGradCheck({&a, &b}, [&](Tape& tape) {
        const VarId va = tape.leaf(&a);
        const VarId vb = tape.leaf(&b);
        const VarId expr = tape.mul(tape.add(va, tape.scale(vb, 0.5f)),
                                    tape.sub(va, vb));
        return tape.sumAll(expr);
    });
}

TEST(GradCheck, ReluAwayFromKink)
{
    smoothe::util::Rng rng(22);
    Param a{randomTensor(2, 6, rng, 0.2, 1.0)}; // stay off the kink
    for (std::size_t i = 0; i < 6; ++i)
        a.value.at(1, i) = static_cast<float>(-0.2 - 0.1 * i);
    expectGradCheck({&a}, [&](Tape& tape) {
        return tape.sumAll(tape.relu(tape.leaf(&a)));
    });
}

TEST(GradCheck, MulAddConstBroadcast)
{
    smoothe::util::Rng rng(23);
    Param a{randomTensor(3, 4, rng)};
    Tensor mask(1, 4);
    mask.at(0, 0) = 0.0f;
    mask.at(0, 1) = 1.0f;
    mask.at(0, 2) = 2.0f;
    mask.at(0, 3) = -1.0f;
    expectGradCheck({&a}, [&](Tape& tape) {
        const VarId x = tape.mulConst(tape.leaf(&a), mask);
        return tape.sumAll(tape.addConst(x, mask));
    });
}

TEST(GradCheck, DotRowsMeanRows)
{
    smoothe::util::Rng rng(24);
    Param a{randomTensor(3, 5, rng)};
    expectGradCheck({&a}, [&](Tape& tape) {
        const VarId d =
            tape.dotRowsConst(tape.leaf(&a), {1.0f, -2.0f, 0.5f, 3.0f, 2.0f});
        const VarId m = tape.meanRows(tape.leaf(&a));
        return tape.add(tape.sumAll(d), tape.sumAll(m));
    });
}

TEST(GradCheck, SegmentSoftmax)
{
    st::SegmentIndex segs;
    segs.offsets = {0, 3, 5, 6};
    segs.items = {0, 1, 2, 3, 4, 5};
    smoothe::util::Rng rng(25);
    Param theta{randomTensor(2, 6, rng, -2.0, 2.0)};
    expectGradCheck({&theta}, [&](Tape& tape) {
        const VarId cp = tape.segmentSoftmax(tape.leaf(&theta), &segs);
        // Weighted sum makes the gradient non-trivial per element.
        return tape.sumAll(tape.dotRowsConst(
            cp, {1.0f, 3.0f, -2.0f, 0.5f, 2.0f, -1.0f}));
    });
}

TEST(GradCheck, SegmentProductComplement)
{
    st::SegmentIndex segs;
    segs.offsets = {0, 2, 2, 5};
    segs.items = {1, 3, 0, 2, 4};
    smoothe::util::Rng rng(26);
    Param p{randomTensor(2, 5, rng, 0.1, 0.8)};
    expectGradCheck({&p}, [&](Tape& tape) {
        const VarId prod =
            tape.segmentProductComplement(tape.leaf(&p), &segs);
        return tape.sumAll(tape.dotRowsConst(prod, {2.0f, -1.0f, 1.5f}));
    });
}

TEST(GradCheck, SegmentMaxGather)
{
    st::SegmentIndex segs;
    segs.offsets = {0, 2, 5};
    segs.items = {0, 1, 2, 3, 4};
    smoothe::util::Rng rng(27);
    // Well-separated values keep the argmax stable under epsilon.
    Param p{Tensor(1, 5)};
    p.value.at(0, 0) = 0.9f;
    p.value.at(0, 1) = 0.1f;
    p.value.at(0, 2) = 0.2f;
    p.value.at(0, 3) = 0.7f;
    p.value.at(0, 4) = 0.3f;
    expectGradCheck({&p}, [&](Tape& tape) {
        const VarId mx = tape.segmentMaxGather(tape.leaf(&p), &segs);
        return tape.sumAll(tape.dotRowsConst(mx, {2.0f, 3.0f}));
    });
}

TEST(GradCheck, GatherCols)
{
    const std::vector<std::uint32_t> index = {1, 0, 2, 1};
    smoothe::util::Rng rng(28);
    Param q{randomTensor(2, 3, rng)};
    expectGradCheck({&q}, [&](Tape& tape) {
        const VarId g = tape.gatherCols(tape.leaf(&q), &index);
        return tape.sumAll(
            tape.dotRowsConst(g, {1.0f, 2.0f, 3.0f, 4.0f}));
    });
}

TEST(GradCheck, MatMulAndBias)
{
    smoothe::util::Rng rng(29);
    Param a{randomTensor(2, 3, rng)};
    Param w{randomTensor(3, 4, rng)};
    Param bias{randomTensor(1, 4, rng)};
    expectGradCheck({&a, &w, &bias}, [&](Tape& tape) {
        const VarId h = tape.addRowBroadcast(
            tape.matmul(tape.leaf(&a), tape.leaf(&w)), tape.leaf(&bias));
        return tape.sumAll(tape.mul(h, h));
    });
}

TEST(GradCheck, ScatterMatrixPerSeed)
{
    const std::vector<ad::MatrixEntry> entries = {
        {0, 1}, {1, 2}, {2, 1}, {0, 3}};
    smoothe::util::Rng rng(30);
    Param cp{randomTensor(2, 3, rng, 0.1, 0.9)};
    expectGradCheck({&cp}, [&](Tape& tape) {
        const VarId a =
            tape.scatterMatrix(tape.leaf(&cp), &entries, 2, false);
        return tape.sumAll(tape.mul(a, a));
    });
}

TEST(GradCheck, ScatterMatrixMeanAndTrExpm)
{
    // Two classes forming a 2-cycle; entries place cp mass on the
    // off-diagonals, so tr(exp(A)) = 2 cosh(sqrt(a01 * a10)).
    const std::vector<ad::MatrixEntry> entries = {
        {0, 1}, {1, 2}};
    smoothe::util::Rng rng(31);
    Param cp{randomTensor(3, 2, rng, 0.1, 0.9)};
    expectGradCheck({&cp}, [&](Tape& tape) {
        const VarId a =
            tape.scatterMatrix(tape.leaf(&cp), &entries, 2, true);
        return tape.sumAll(tape.trExpm(a, 2));
    });
}

TEST(GradCheck, TrExpmPerSeed)
{
    smoothe::util::Rng rng(32);
    Param a{randomTensor(2, 9, rng, -0.4, 0.4)};
    expectGradCheck({&a}, [&](Tape& tape) {
        return tape.sumAll(tape.trExpm(tape.leaf(&a), 3));
    });
}

TEST(GradCheck, CompositePipeline)
{
    // A miniature SmoothE-like pipeline: softmax -> gather -> mul ->
    // product-complement -> dot.
    st::SegmentIndex members;
    members.offsets = {0, 2, 4};
    members.items = {0, 1, 2, 3};
    st::SegmentIndex parents;
    parents.offsets = {0, 0, 2};
    parents.items = {0, 1};
    const std::vector<std::uint32_t> node2class = {0, 0, 1, 1};

    smoothe::util::Rng rng(33);
    Param theta{randomTensor(2, 4, rng, -1.5, 1.5)};
    expectGradCheck({&theta}, [&](Tape& tape) {
        const VarId cp = tape.segmentSoftmax(tape.leaf(&theta), &members);
        Tensor q0(2, 2);
        q0.at(0, 0) = 1.0f;
        q0.at(1, 0) = 1.0f;
        VarId q = tape.constant(q0);
        for (int t = 0; t < 3; ++t) {
            const VarId p = tape.mul(cp, tape.gatherCols(q, &node2class));
            const VarId prod = tape.segmentProductComplement(p, &parents);
            const VarId ind =
                tape.addScalar(tape.scale(prod, -1.0f), 1.0f);
            Tensor notRoot(1, 2, 1.0f);
            notRoot.at(0, 0) = 0.0f;
            Tensor root(1, 2);
            root.at(0, 0) = 1.0f;
            q = tape.addConst(tape.mulConst(ind, notRoot), root);
        }
        const VarId p = tape.mul(cp, tape.gatherCols(q, &node2class));
        return tape.sumAll(
            tape.dotRowsConst(p, {1.0f, 5.0f, 2.0f, 3.0f}));
    });
}

TEST(Tape, ScalarBackendSegmentOpsAgree)
{
    st::SegmentIndex segs;
    segs.offsets = {0, 3, 5, 6};
    segs.items = {0, 1, 2, 3, 4, 5};
    smoothe::util::Rng rng(91);
    Tensor theta = randomTensor(3, 6, rng, -2.0, 2.0);
    Tensor p = randomTensor(3, 6, rng, 0.05, 0.9);

    Tape fast(st::Backend::Vectorized);
    Tape slow(st::Backend::Scalar);
    const VarId fsm = fast.segmentSoftmax(fast.constant(theta), &segs);
    const VarId ssm = slow.segmentSoftmax(slow.constant(theta), &segs);
    const VarId fpc =
        fast.segmentProductComplement(fast.constant(p), &segs);
    const VarId spc =
        slow.segmentProductComplement(slow.constant(p), &segs);
    const VarId fmx = fast.segmentMaxGather(fast.constant(p), &segs);
    const VarId smx = slow.segmentMaxGather(slow.constant(p), &segs);
    for (std::size_t i = 0; i < 18; ++i) {
        EXPECT_NEAR(fast.value(fsm).data()[i], slow.value(ssm).data()[i],
                    1e-6);
    }
    for (std::size_t i = 0; i < 9; ++i) {
        EXPECT_NEAR(fast.value(fpc).data()[i], slow.value(spc).data()[i],
                    1e-6);
        EXPECT_NEAR(fast.value(fmx).data()[i], slow.value(smx).data()[i],
                    1e-6);
    }
}

TEST(Tape, ClearDropsNodes)
{
    Tape tape;
    const VarId a = tape.constant(Tensor(1, 3, 1.0f));
    tape.scale(a, 2.0f);
    EXPECT_EQ(tape.numNodes(), 2u);
    tape.clear();
    EXPECT_EQ(tape.numNodes(), 0u);
}

TEST(Adam, LearningRateAdjustable)
{
    Param x{Tensor(1, 1, 0.0f)};
    ad::Adam opt({&x}, ad::AdamConfig{0.5f, 0.9f, 0.999f, 1e-8f});
    EXPECT_FLOAT_EQ(opt.learningRate(), 0.5f);
    opt.setLearningRate(0.01f);
    EXPECT_FLOAT_EQ(opt.learningRate(), 0.01f);

    // One step with grad 1 moves by ~lr (bias-corrected first step).
    x.zeroGrad();
    x.grad.at(0, 0) = 1.0f;
    opt.step();
    EXPECT_NEAR(x.value.at(0, 0), -0.01, 2e-3);
}

TEST(GradCheck, ReportsTightErrorOnLinearGraph)
{
    // d(sum(a))/da == 1 exactly; the checker must report near-zero error.
    Param a{Tensor(1, 4, 0.5f)};
    const auto result = ad::checkGradients({&a}, [&](Tape& tape) {
        return tape.sumAll(tape.leaf(&a));
    });
    EXPECT_TRUE(result.ok);
    EXPECT_LT(result.maxRelError, 1e-3);
}

TEST(Adam, ConvergesOnQuadratic)
{
    // minimize ||x - target||^2.
    Param x{Tensor(1, 4, 0.0f)};
    Tensor target(1, 4);
    target.at(0, 0) = 1.0f;
    target.at(0, 1) = -2.0f;
    target.at(0, 2) = 0.5f;
    target.at(0, 3) = 3.0f;

    ad::Adam opt({&x}, ad::AdamConfig{0.1f, 0.9f, 0.999f, 1e-8f});
    for (int i = 0; i < 400; ++i) {
        opt.zeroGrad();
        Tape tape;
        const VarId diff = tape.sub(tape.leaf(&x), tape.constant(target));
        const VarId loss = tape.sumAll(tape.mul(diff, diff));
        tape.backward(loss);
        opt.step();
    }
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(x.value.data()[i], target.data()[i], 0.05);
}

TEST(Tape, BackwardThroughSharedSubexpression)
{
    // y = a * a (same input twice) -> dy/da = 2a.
    Param a{Tensor(1, 1, 3.0f)};
    a.zeroGrad();
    Tape tape;
    const VarId va = tape.leaf(&a);
    const VarId loss = tape.sumAll(tape.mul(va, va));
    tape.backward(loss);
    EXPECT_NEAR(a.grad.at(0, 0), 6.0f, 1e-5);
}

TEST(Tape, GradAccumulatesAcrossBackwardCalls)
{
    Param a{Tensor(1, 1, 2.0f)};
    a.zeroGrad();
    for (int i = 0; i < 3; ++i) {
        Tape tape;
        const VarId loss = tape.sumAll(tape.leaf(&a));
        tape.backward(loss);
    }
    EXPECT_NEAR(a.grad.at(0, 0), 3.0f, 1e-6);
}

TEST(Tape, ArenaAccountsNodeTensors)
{
    st::Arena arena;
    Tape tape(st::Backend::Vectorized, &arena);
    Tensor a(4, 100);
    const VarId va = tape.constant(std::move(a));
    tape.scale(va, 2.0f);
    EXPECT_GE(arena.used(), 4 * 100 * sizeof(float));
}
