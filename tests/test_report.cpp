/**
 * @file
 * Run-report subsystem tests: golden-file schema round-trip, JSON
 * validation, regression detection via checkReports, and end-to-end
 * gating through the smoothe_report binary (--check exits nonzero when
 * a 20% slowdown is injected into the candidate).
 *
 * Regenerate the golden after an intentional schema change with:
 *   SMOOTHE_REGEN_GOLDEN=1 ./build/tests/test_report
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/report.hpp"
#include "util/json.hpp"

namespace so = smoothe::obs;
namespace util = smoothe::util;

#ifndef SMOOTHE_GOLDEN_DIR
#define SMOOTHE_GOLDEN_DIR "tests/golden"
#endif

namespace {

/**
 * Fills a report with fully deterministic contents: fixed run keys
 * (install() is deliberately not used — it stamps the git sha), fixed
 * measurement samples, phase observations, and series rows.
 */
void
populateSample(so::Report& report)
{
    report.setRun("tool", "unit_test");
    report.setRun("family", "golden");
    report.setRun("seed", 7);

    so::Measurement& kernel =
        report.measurement("kernel.time").unit("s").checked(false);
    kernel.add(0.5);
    kernel.add(1.5);
    report.measurement("arena.bytes").unit("B").tolerancePct(5.0).add(
        4096.0);
    report.measurement("speedup").unit("x").higherIsBetter().add(2.0);

    so::PhaseTimer& loss =
        report.phase("loss", {0.001, 0.01, 0.1});
    loss.observe(0.0005); // first bucket
    loss.observe(0.005);
    loss.observe(0.05);
    loss.observe(5.0); // overflow bucket

    so::Series& curve =
        report.series("convergence", {"iteration", "loss"});
    curve.addRow({0.0, 10.0});
    curve.addRow({1.0, 5.0});
    curve.addRow({2.0, 2.5});
}

/** Serializes the sample without the volatile metrics snapshot. */
util::Json
sampleReportJson()
{
    so::Report report("unit_test");
    populateSample(report);
    return report.toJson(false);
}

std::string
sampleReportText()
{
    return sampleReportJson().dumpPretty() + "\n";
}

std::string
goldenPath()
{
    return std::string(SMOOTHE_GOLDEN_DIR) + "/report_schema.json";
}

/** Locates a built binary relative to the test executable's directory. */
std::string
binaryPath(const std::string& name)
{
    const char* candidates[] = {"../tools/", "./build/tools/",
                                "build/tools/"};
    for (const char* dir : candidates) {
        const std::string path = std::string(dir) + name;
        if (FILE* f = std::fopen(path.c_str(), "rb")) {
            std::fclose(f);
            return path;
        }
    }
    return "";
}

int
runCommand(const std::string& command)
{
    const int status =
        std::system((command + " > /dev/null 2>&1").c_str());
    return status < 0 ? status : status / 256; // decode exit code
}

/** Writes a baseline/candidate report pair where the candidate runs
 *  `slowdown`x the baseline's checked kernel time. */
void
writeCheckPair(const std::string& base_path,
               const std::string& cand_path, double slowdown)
{
    so::Report baseline("gate_test");
    baseline.setRun("tool", "gate_test");
    so::Measurement& baseTime =
        baseline.measurement("kernel.time").unit("s");
    baseTime.add(0.1);
    baseTime.add(0.1);
    baseline.measurement("speedup").higherIsBetter().add(2.0);
    ASSERT_TRUE(baseline.writeTo(base_path));

    so::Report candidate("gate_test");
    candidate.setRun("tool", "gate_test");
    so::Measurement& candTime =
        candidate.measurement("kernel.time").unit("s");
    candTime.add(0.1 * slowdown);
    candTime.add(0.1 * slowdown);
    candidate.measurement("speedup").higherIsBetter().add(2.0);
    ASSERT_TRUE(candidate.writeTo(cand_path));
}

} // namespace

TEST(Report, GoldenSchemaRoundTrip)
{
    const std::string actual = sampleReportText();
    if (std::getenv("SMOOTHE_REGEN_GOLDEN") != nullptr) {
        ASSERT_TRUE(util::writeFile(goldenPath(), actual));
        GTEST_SKIP() << "regenerated " << goldenPath();
    }
    const auto expected = util::readFile(goldenPath());
    ASSERT_TRUE(expected.has_value())
        << "missing golden file " << goldenPath();
    EXPECT_EQ(actual, *expected)
        << "report schema drifted; regenerate the golden with "
           "SMOOTHE_REGEN_GOLDEN=1 after reviewing the diff";
}

TEST(Report, SerializedReportValidates)
{
    auto doc = util::Json::parse(sampleReportText());
    ASSERT_TRUE(doc.has_value());
    std::string error;
    EXPECT_TRUE(so::validateReportJson(*doc, &error)) << error;

    // writeTo() output (with the metrics snapshot) validates too.
    const std::string path = "/tmp/smoothe_test_report_full.json";
    so::Report full("unit_test");
    populateSample(full);
    ASSERT_TRUE(full.writeTo(path));
    const auto text = util::readFile(path);
    ASSERT_TRUE(text.has_value());
    auto written = util::Json::parse(*text);
    ASSERT_TRUE(written.has_value());
    EXPECT_TRUE(so::validateReportJson(*written, &error)) << error;
}

TEST(Report, ValidationRejectsForeignAndBrokenDocs)
{
    std::string error;
    auto notAReport = util::Json::parse("{\"hello\": 1}");
    ASSERT_TRUE(notAReport.has_value());
    EXPECT_FALSE(so::validateReportJson(*notAReport, &error));

    auto doc = util::Json::parse(sampleReportText());
    ASSERT_TRUE(doc.has_value());
    doc->set("schemaVersion", 999);
    EXPECT_FALSE(so::validateReportJson(*doc, &error));
    EXPECT_FALSE(error.empty());
}

TEST(Report, PhasePercentilesLandInJson)
{
    const auto doc = sampleReportJson();
    const util::Json* phases = doc.find("phases");
    ASSERT_NE(phases, nullptr);
    const util::Json* loss = phases->find("loss");
    ASSERT_NE(loss, nullptr);
    ASSERT_NE(loss->find("p50"), nullptr);
    ASSERT_NE(loss->find("p90"), nullptr);
    ASSERT_NE(loss->find("p99"), nullptr);
    // 4 bounds-delimited buckets: 3 finite + overflow.
    EXPECT_EQ(loss->find("counts")->asArray().size(),
              loss->find("bounds")->asArray().size() + 1);
    EXPECT_EQ(loss->find("count")->asNumber(), 4.0);
}

TEST(Report, CheckDetectsInjectedSlowdown)
{
    const auto baseline = sampleReportJson();

    // Identical reports: findings, but no regression.
    const auto same =
        so::checkReports(baseline, sampleReportJson(), 5.0);
    ASSERT_FALSE(same.empty());
    for (const auto& finding : same)
        EXPECT_FALSE(finding.regression) << finding.measurement;

    // 20% slower checked measurement: regression beyond 5%.
    so::Report slow("unit_test");
    slow.setRun("tool", "unit_test");
    slow.measurement("arena.bytes").unit("B").add(4096.0 * 1.2);
    slow.measurement("speedup").higherIsBetter().add(2.0);
    const auto findings =
        so::checkReports(baseline, slow.toJson(false), 5.0);
    bool sawRegression = false;
    for (const auto& finding : findings)
        sawRegression = sawRegression || (finding.measurement ==
                                              "arena.bytes" &&
                                          finding.regression);
    EXPECT_TRUE(sawRegression);

    // Unchecked measurements ("kernel.time") are never gated.
    for (const auto& finding : findings)
        EXPECT_NE(finding.measurement, "kernel.time");
}

TEST(Report, CheckRespectsDirectionAndTolerance)
{
    const auto baseline = sampleReportJson();

    // Higher-is-better: a LOWER candidate speedup is the regression.
    so::Report slower("unit_test");
    slower.setRun("tool", "unit_test");
    slower.measurement("arena.bytes").unit("B").add(4096.0);
    slower.measurement("speedup").higherIsBetter().add(1.0);
    const auto findings =
        so::checkReports(baseline, slower.toJson(false), 5.0);
    bool speedupRegressed = false;
    for (const auto& finding : findings)
        speedupRegressed =
            speedupRegressed ||
            (finding.measurement == "speedup" && finding.regression);
    EXPECT_TRUE(speedupRegressed);

    // arena.bytes carries tolerancePct(5); +3% passes even when the
    // command-line default tolerance is zero.
    so::Report nearby("unit_test");
    nearby.setRun("tool", "unit_test");
    nearby.measurement("arena.bytes").unit("B").add(4096.0 * 1.03);
    nearby.measurement("speedup").higherIsBetter().add(2.0);
    for (const auto& finding :
         so::checkReports(baseline, nearby.toJson(false), 0.0)) {
        if (finding.measurement == "arena.bytes") {
            EXPECT_FALSE(finding.regression);
        }
    }
}

TEST(Report, CheckToolGatesRegression)
{
    const std::string tool = binaryPath("smoothe_report");
    if (tool.empty())
        GTEST_SKIP() << "smoothe_report binary not found relative to cwd";

    const std::string base = "/tmp/smoothe_report_base.json";
    const std::string good = "/tmp/smoothe_report_good.json";
    const std::string bad = "/tmp/smoothe_report_bad.json";
    writeCheckPair(base, good, 1.0);
    {
        so::Report candidate("gate_test");
        candidate.setRun("tool", "gate_test");
        so::Measurement& time =
            candidate.measurement("kernel.time").unit("s");
        time.add(0.12); // +20%
        time.add(0.12);
        candidate.measurement("speedup").higherIsBetter().add(2.0);
        ASSERT_TRUE(candidate.writeTo(bad));
    }

    // Summary mode accepts any valid report.
    EXPECT_EQ(runCommand(tool + " " + base), 0);

    // Identical candidate passes the gate...
    EXPECT_EQ(runCommand(tool + " --check --baseline " + base +
                         " --tolerance 5 " + good),
              0);
    // ...a 20% slowdown fails it with exit code 1...
    EXPECT_EQ(runCommand(tool + " --check --baseline " + base +
                         " --tolerance 5 " + bad),
              1);
    // ...and a generous tolerance lets the same candidate through.
    EXPECT_EQ(runCommand(tool + " --check --baseline " + base +
                         " --tolerance 50 " + bad),
              0);

    // Usage and I/O errors exit 2.
    EXPECT_EQ(runCommand(tool + " --check --baseline " + base), 2);
    EXPECT_EQ(runCommand(tool + " /tmp/no_such_report.json"), 2);
}
