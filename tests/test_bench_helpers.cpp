/**
 * @file
 * Unit tests for the bench-harness helpers (statistics, cell formatting,
 * option parsing) so the reported tables are trustworthy.
 */

#include <gtest/gtest.h>

#include "bench/common.hpp"

namespace bench = smoothe::bench;

TEST(BenchHelpers, GeometricMean)
{
    EXPECT_DOUBLE_EQ(bench::geometricMean({}), 0.0);
    EXPECT_DOUBLE_EQ(bench::geometricMean({4.0}), 4.0);
    EXPECT_NEAR(bench::geometricMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(bench::geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(BenchHelpers, NormalizedIncrease)
{
    EXPECT_DOUBLE_EQ(bench::normalizedIncrease(110.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(bench::normalizedIncrease(100.0, 100.0), 0.0);
    EXPECT_DOUBLE_EQ(bench::normalizedIncrease(50.0, 0.0), 0.0); // guard
    EXPECT_NEAR(bench::normalizedIncrease(730.0, 100.0), 6.3, 1e-12);
}

TEST(BenchHelpers, WorstAvgCell)
{
    EXPECT_EQ(bench::worstAvgCell(0.044, 0.002, 0), "4.4% / 0.2%");
    const std::string failed = bench::worstAvgCell(0.0, 0.075, 2);
    EXPECT_NE(failed.find("Failed(2)"), std::string::npos);
    EXPECT_NE(failed.find("7.5%"), std::string::npos);
}

TEST(BenchHelpers, OptionsParseAndQuickMode)
{
    const char* argv[] = {"bench", "--scale", "0.5", "--time-limit=3",
                          "--runs", "2", "--max-graphs", "7"};
    smoothe::bench::BenchOptions options =
        bench::BenchOptions::parse(8, const_cast<char**>(argv));
    EXPECT_DOUBLE_EQ(options.scale, 0.5);
    EXPECT_DOUBLE_EQ(options.timeLimit, 3.0);
    EXPECT_EQ(options.runs, 2u);
    EXPECT_EQ(options.maxGraphs, 7u);

    const char* quickArgv[] = {"bench", "--quick"};
    const auto quick =
        bench::BenchOptions::parse(2, const_cast<char**>(quickArgv));
    EXPECT_LT(quick.scale, 0.1);
    EXPECT_LE(quick.timeLimit, 2.0);
    EXPECT_EQ(quick.runs, 1u);
}

TEST(BenchHelpers, CapGraphs)
{
    smoothe::bench::BenchOptions options;
    options.maxGraphs = 2;
    std::vector<int> items = {1, 2, 3, 4};
    EXPECT_EQ(options.capGraphs(items).size(), 2u);
    options.maxGraphs = 0;
    EXPECT_EQ(options.capGraphs(items).size(), 4u);
}

TEST(BenchHelpers, RepeatMeasureStatsAndWarmup)
{
    smoothe::obs::Report::uninstall(); // isolate from parse() installs

    int calls = 0;
    const auto stats =
        bench::repeatMeasure("", /*warmup=*/2, /*repeats=*/3,
                             [&calls] { ++calls; });
    EXPECT_EQ(calls, 5); // 2 untimed warmups + 3 timed repeats
    EXPECT_EQ(stats.repeats, 3u);
    EXPECT_GE(stats.mean, 0.0);
    EXPECT_LE(stats.min, stats.mean);
    EXPECT_GE(stats.max, stats.mean);
    EXPECT_GE(stats.stddev, 0.0);
    EXPECT_FALSE(stats.cell().empty());
}

TEST(BenchHelpers, RepeatMeasureRecordsIntoReport)
{
    smoothe::obs::Report& report =
        smoothe::obs::Report::install("bench_helpers_test",
                                      "/tmp/smoothe_bench_helpers.json");
    const auto stats =
        bench::repeatMeasure("helper.kernel", 0, 4, [] {});
    EXPECT_EQ(stats.repeats, 4u);
    EXPECT_EQ(report.measurement("helper.kernel").count(), 4u);
    EXPECT_DOUBLE_EQ(report.measurement("helper.kernel").mean(),
                     stats.mean);
    smoothe::obs::Report::uninstall();

    // Without an installed report the helper still measures.
    const auto bare = bench::repeatMeasure("helper.kernel", 0, 2, [] {});
    EXPECT_EQ(bare.repeats, 2u);
}
