/**
 * @file
 * Cost model tests: linear cost equivalence with DAG cost, MLP forward /
 * training / differentiability, composite model.
 */

#include <gtest/gtest.h>

#include <memory>

#include "autodiff/gradcheck.hpp"
#include "costmodel/cost_model.hpp"
#include "datasets/generators.hpp"
#include "extraction/random_sample.hpp"

namespace ad = smoothe::ad;
namespace cm = smoothe::cost;
namespace ds = smoothe::datasets;
namespace ex = smoothe::extract;
namespace eg = smoothe::eg;

TEST(LinearCost, MatchesDagCostOnValidSelections)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    const cm::LinearCost cost(g);
    smoothe::util::Rng rng(2);
    for (int i = 0; i < 20; ++i) {
        const auto sel = ex::sampleRandomSelection(g, rng);
        ASSERT_TRUE(sel.chosen(g.root()));
        EXPECT_DOUBLE_EQ(cost.discrete(sel.toNodeIndicator(g)),
                         ex::dagCost(g, sel));
    }
}

TEST(LinearCost, BuildComputesDotProduct)
{
    const cm::LinearCost cost(std::vector<float>{1.0f, 2.0f, 3.0f});
    ad::Tape tape;
    ad::Tensor p(2, 3);
    p.at(0, 0) = 1.0f;
    p.at(0, 1) = 0.5f;
    p.at(0, 2) = 0.0f;
    p.at(1, 0) = 0.0f;
    p.at(1, 1) = 1.0f;
    p.at(1, 2) = 1.0f;
    const auto out = cost.build(tape, tape.constant(p));
    EXPECT_FLOAT_EQ(tape.value(out).at(0, 0), 2.0f);
    EXPECT_FLOAT_EQ(tape.value(out).at(1, 0), 5.0f);
}

TEST(MlpCost, ForwardIsDeterministic)
{
    smoothe::util::Rng rng(10);
    cm::MlpCost mlp(12, rng);
    std::vector<bool> s(12, false);
    s[2] = s[5] = true;
    const double a = mlp.discrete(s);
    const double b = mlp.discrete(s);
    EXPECT_DOUBLE_EQ(a, b);
    s[7] = true;
    EXPECT_NE(mlp.discrete(s), a); // input sensitivity (almost surely)
}

TEST(MlpCost, TrainingReducesMse)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    smoothe::util::Rng rng(11);
    cm::MlpCost mlp(g.numNodes(), rng);

    // Capture MSE after 1 epoch vs after many.
    smoothe::util::Rng rngA(13);
    cm::MlpCost fresh(g.numNodes(), rngA);
    smoothe::util::Rng dataRng(17);
    const double early = fresh.trainSynthetic(g, 32, 1, dataRng);
    smoothe::util::Rng rngB(13);
    cm::MlpCost trained(g.numNodes(), rngB);
    smoothe::util::Rng dataRng2(17);
    const double late = trained.trainSynthetic(g, 32, 120, dataRng2);
    EXPECT_LT(late, early);
}

TEST(MlpCost, GradientsFlowToInput)
{
    smoothe::util::Rng rng(19);
    cm::MlpCost mlp(6, rng);
    ad::Param p{ad::Tensor(2, 6, 0.5f)};
    const auto result = ad::checkGradients(
        {&p},
        [&](ad::Tape& tape) {
            return tape.sumAll(mlp.build(tape, tape.leaf(&p)));
        },
        1e-3, 5e-2);
    EXPECT_TRUE(result.ok) << result.maxRelError;
}

TEST(MlpCost, ForwardBatchMatchesDiscrete)
{
    smoothe::util::Rng rng(41);
    cm::MlpCost mlp(10, rng);
    ad::Tensor batch(3, 10);
    std::vector<std::vector<bool>> rows(3, std::vector<bool>(10, false));
    rows[0][1] = rows[0][4] = true;
    rows[1][0] = true;
    rows[2][9] = rows[2][3] = rows[2][7] = true;
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t i = 0; i < 10; ++i)
            batch.at(r, i) = rows[r][i] ? 1.0f : 0.0f;
    }
    const auto outputs = mlp.forwardBatch(batch);
    ASSERT_EQ(outputs.size(), 3u);
    for (std::size_t r = 0; r < 3; ++r)
        EXPECT_NEAR(outputs[r], mlp.discrete(rows[r]), 1e-5);
}

TEST(MlpCost, DifferentSeedsDifferentModels)
{
    smoothe::util::Rng rngA(1);
    smoothe::util::Rng rngB(2);
    cm::MlpCost a(8, rngA);
    cm::MlpCost b(8, rngB);
    std::vector<bool> s(8, false);
    s[2] = s[6] = true;
    EXPECT_NE(a.discrete(s), b.discrete(s));
}

TEST(CompositeCost, AddsComponents)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    auto linear = std::make_shared<cm::LinearCost>(g);
    smoothe::util::Rng rng(23);
    auto mlp = std::make_shared<cm::MlpCost>(g.numNodes(), rng);
    const cm::CompositeCost composite(linear, mlp, 0.5f);

    std::vector<bool> s(g.numNodes(), false);
    s[0] = s[3] = true;
    EXPECT_NEAR(composite.discrete(s),
                linear->discrete(s) + 0.5 * mlp->discrete(s), 1e-9);
}

TEST(CompositeCost, BuildMatchesDiscreteOnBinaryInput)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    auto linear = std::make_shared<cm::LinearCost>(g);
    smoothe::util::Rng rng(29);
    auto mlp = std::make_shared<cm::MlpCost>(g.numNodes(), rng);
    const cm::CompositeCost composite(linear, mlp, 1.0f);

    smoothe::util::Rng selRng(31);
    const auto sel = ex::sampleRandomSelection(g, selRng);
    const auto indicator = sel.toNodeIndicator(g);

    ad::Tape tape;
    ad::Tensor p(1, g.numNodes());
    for (std::size_t i = 0; i < indicator.size(); ++i)
        p.at(0, i) = indicator[i] ? 1.0f : 0.0f;
    const auto out = composite.build(tape, tape.constant(p));
    EXPECT_NEAR(tape.value(out).at(0, 0), composite.discrete(indicator),
                1e-3);
}
