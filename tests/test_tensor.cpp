/**
 * @file
 * Unit tests for the tensor substrate: arena accounting / OOM, tensors,
 * segment indices, and SpMV on both backends.
 */

#include <gtest/gtest.h>

#include "tensor/sparse.hpp"
#include "tensor/tensor.hpp"

namespace st = smoothe::tensor;

TEST(Arena, TracksUsage)
{
    st::Arena arena;
    {
        st::Tensor t(4, 8, &arena);
        EXPECT_EQ(arena.used(), 4 * 8 * sizeof(float));
    }
    EXPECT_EQ(arena.used(), 0u);
    EXPECT_EQ(arena.peak(), 4 * 8 * sizeof(float));
}

TEST(Arena, ThrowsOnBudgetExceeded)
{
    st::Arena arena(64);
    st::Tensor small(2, 4, &arena); // 32 bytes
    EXPECT_THROW(st::Tensor big(4, 4, &arena), st::OomError);
    EXPECT_EQ(arena.used(), 32u);
}

TEST(Arena, CopyAndMoveAccounting)
{
    st::Arena arena;
    st::Tensor a(2, 2, 1.0f, &arena);
    st::Tensor b = a; // copy doubles usage
    EXPECT_EQ(arena.used(), 2 * (2 * 2 * sizeof(float)));
    st::Tensor c = std::move(a); // move keeps usage
    EXPECT_EQ(arena.used(), 2 * (2 * 2 * sizeof(float)));
    b = std::move(c); // move-assign releases b's old buffer
    EXPECT_EQ(arena.used(), 2 * 2 * sizeof(float));
}

TEST(Tensor, FillAndSum)
{
    st::Tensor t(3, 5, 2.0f);
    EXPECT_DOUBLE_EQ(t.sum(), 30.0);
    t.fill(0.5f);
    EXPECT_DOUBLE_EQ(t.sum(), 7.5);
    t.at(1, 2) = 10.0f;
    EXPECT_FLOAT_EQ(t.at(1, 2), 10.0f);
    EXPECT_FLOAT_EQ(t.row(1)[2], 10.0f);
}

TEST(SegmentIndex, FromAssignment)
{
    // items 0..5 assigned to segments [1, 0, 1, 2, 0, 1].
    const std::vector<std::uint32_t> assignment = {1, 0, 1, 2, 0, 1};
    const auto index = st::SegmentIndex::fromAssignment(assignment, 3);
    EXPECT_EQ(index.numSegments(), 3u);
    EXPECT_EQ(index.segmentSize(0), 2u);
    EXPECT_EQ(index.segmentSize(1), 3u);
    EXPECT_EQ(index.segmentSize(2), 1u);
    // Every item appears exactly once.
    std::vector<std::uint32_t> items(index.items);
    std::sort(items.begin(), items.end());
    for (std::uint32_t i = 0; i < 6; ++i)
        EXPECT_EQ(items[i], i);
    // Items within a segment really belong to it.
    for (std::size_t s = 0; s < 3; ++s) {
        for (std::uint32_t e = index.offsets[s]; e < index.offsets[s + 1];
             ++e)
            EXPECT_EQ(assignment[index.items[e]], s);
    }
}

TEST(SegmentIndex, EmptySegments)
{
    const std::vector<std::uint32_t> assignment = {2, 2};
    const auto index = st::SegmentIndex::fromAssignment(assignment, 4);
    EXPECT_EQ(index.segmentSize(0), 0u);
    EXPECT_EQ(index.segmentSize(1), 0u);
    EXPECT_EQ(index.segmentSize(2), 2u);
    EXPECT_EQ(index.segmentSize(3), 0u);
}

TEST(Arena, ResetPeakAndSetBudget)
{
    st::Arena arena;
    {
        st::Tensor big(16, 16, &arena);
        EXPECT_EQ(arena.peak(), 16 * 16 * sizeof(float));
    }
    arena.resetPeak();
    EXPECT_EQ(arena.peak(), 0u);
    arena.setBudget(8);
    EXPECT_THROW(st::Tensor t(2, 2, &arena), st::OomError);
    arena.setBudget(0); // unlimited again
    st::Tensor ok(64, 64, &arena);
    EXPECT_EQ(arena.used(), 64 * 64 * sizeof(float));
}

TEST(Tensor, MovedFromIsEmpty)
{
    st::Tensor a(2, 3, 1.0f);
    st::Tensor b = std::move(a);
    EXPECT_TRUE(a.empty()); // NOLINT(bugprone-use-after-move): spec'd
    EXPECT_EQ(b.rows(), 2u);
    EXPECT_EQ(b.cols(), 3u);
    EXPECT_DOUBLE_EQ(b.sum(), 6.0);
}

TEST(Tensor, SelfAssignmentSafe)
{
    st::Arena arena;
    st::Tensor a(3, 3, 2.0f, &arena);
    a = a;
    EXPECT_DOUBLE_EQ(a.sum(), 18.0);
    EXPECT_EQ(arena.used(), 3 * 3 * sizeof(float));
}

namespace {

st::CsrMatrix
smallMatrix()
{
    // [[1, 0, 2],
    //  [0, 3, 0]]
    st::CsrMatrix m;
    m.numRows = 2;
    m.numCols = 3;
    m.rowOffsets = {0, 2, 3};
    m.colIndices = {0, 2, 1};
    m.values = {1.0f, 2.0f, 3.0f};
    return m;
}

} // namespace

TEST(Spmv, BothBackendsMatch)
{
    const st::CsrMatrix m = smallMatrix();
    st::Tensor x(2, 3);
    x.at(0, 0) = 1.0f;
    x.at(0, 1) = 2.0f;
    x.at(0, 2) = 3.0f;
    x.at(1, 0) = -1.0f;
    x.at(1, 1) = 0.5f;
    x.at(1, 2) = 4.0f;

    st::Tensor outScalar(2, 2);
    st::Tensor outVector(2, 2);
    st::spmv(m, x, outScalar, st::Backend::Scalar);
    st::spmv(m, x, outVector, st::Backend::Vectorized);

    EXPECT_FLOAT_EQ(outScalar.at(0, 0), 7.0f);  // 1*1 + 2*3
    EXPECT_FLOAT_EQ(outScalar.at(0, 1), 6.0f);  // 3*2
    EXPECT_FLOAT_EQ(outScalar.at(1, 0), 7.0f);  // -1 + 8
    EXPECT_FLOAT_EQ(outScalar.at(1, 1), 1.5f);
    for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_FLOAT_EQ(outScalar.at(r, c), outVector.at(r, c));
    }
}

TEST(Spmv, EmptyRowsYieldZero)
{
    st::CsrMatrix m;
    m.numRows = 3;
    m.numCols = 2;
    m.rowOffsets = {0, 0, 1, 1};
    m.colIndices = {1};
    m.values = {5.0f};
    st::Tensor x(1, 2, 1.0f);
    st::Tensor out(1, 3);
    st::spmv(m, x, out, st::Backend::Vectorized);
    EXPECT_FLOAT_EQ(out.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1), 5.0f);
    EXPECT_FLOAT_EQ(out.at(0, 2), 0.0f);
}
