/**
 * @file
 * Command-line extractor, compatible with extraction-gym JSON e-graphs.
 *
 * Usage:
 *   smoothe_extract --input egraph.json [--extractor smoothe]
 *                   [--time-limit 10] [--seed 1] [--seeds 16]
 *                   [--assumption hybrid] [--lambda 8] [--eager]
 *                   [--incremental] [--epochs N]
 *                   [--output selection.json] [--threads N]
 *                   [--validate] [--log-level debug] [--log-json log.jsonl]
 *                   [--trace-out trace.json] [--metrics-out metrics.json]
 *                   [--profile] [--profile-out prof.folded]
 *                   [--profile-stride N]
 *
 * --incremental re-extracts each graph through the incremental protocol
 * (extractIncremental + a caller-owned IncrementalState), --epochs N
 * times: epoch 0 runs cold, later epochs warm-start from the carried
 * state under an identity delta. This exercises exactly the code path a
 * saturation loop drives (see bench_anytime_eqsat for evolving graphs)
 * and bumps the per-epoch `extraction.<name>.incremental_runs` counter
 * visible via --metrics-out. Requires an extractor with incremental
 * support and the compiled replay (rejected with --eager).
 *
 * A suite of e-graphs can be given as `--inputs a.json,b.json,...`; the
 * graphs are then extracted concurrently on the worker pool (one task per
 * graph, --threads controls the pool size). Each graph derives its RNG
 * stream from --seed and its position in the list, so results are
 * bit-identical for any thread count and the first graph matches a
 * single --input run with the same seed.
 *
 * Prints a one-line summary (extractor, status, cost, time) per graph in
 * input order and, when --output is given (single graph only), writes the
 * chosen e-node per e-class as JSON:
 *   {"choices": {"<class>": <node>, ...}, "cost": ..., "status": "..."}
 */

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/factory.hpp"
#include "egraph/serialize.hpp"
#include "extraction/validate.hpp"
#include "obs/cli.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace {

/** Splits "a.json,b.json" into its comma-separated parts. */
std::vector<std::string>
splitList(const std::string& list)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        if (end > start)
            parts.push_back(list.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return parts;
}

/** Per-graph RNG stream: graph 0 keeps the base seed unchanged. */
std::uint64_t
graphSeed(std::uint64_t base, std::size_t index)
{
    return base ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(index));
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace smoothe;
    const util::Args args(argc, argv);
    obs::installCliTelemetry(
        args, obs::toolNameFromArgv0(argc > 0 ? argv[0] : nullptr,
                                     "smoothe_extract")
                  .c_str());

    std::vector<std::string> inputs;
    const std::string inputList = args.getString("inputs", "");
    if (!inputList.empty())
        inputs = splitList(inputList);
    const std::string input = args.getString("input", "");
    if (inputs.empty() && !input.empty())
        inputs.push_back(input);
    if (inputs.empty()) {
        std::fprintf(stderr,
                     "usage: smoothe_extract --input egraph.json "
                     "[--extractor NAME] [--output out.json]\n"
                     "       smoothe_extract --inputs a.json,b.json,... "
                     "[--threads N]\n"
                     "extractors:");
        for (const auto& name : api::extractorNames())
            std::fprintf(stderr, " %s", name.c_str());
        std::fprintf(stderr, "\n");
        return 2;
    }

    std::vector<eg::EGraph> graphs;
    graphs.reserve(inputs.size());
    for (const std::string& path : inputs) {
        std::string error;
        auto graph = eg::loadFromFile(path, &error);
        if (!graph) {
            std::fprintf(stderr, "error: cannot load %s: %s\n",
                         path.c_str(), error.c_str());
            return 1;
        }
        graphs.push_back(std::move(*graph));
    }

    core::SmoothEConfig config;
    config.numSeeds = static_cast<std::size_t>(args.getInt("seeds", 16));
    config.lambda = static_cast<float>(args.getDouble("lambda", 8.0));
    config.learningRate = static_cast<float>(args.getDouble("lr", 0.1));
    config.maxIterations =
        static_cast<std::size_t>(args.getInt("max-iters", 400));
    config.patience =
        static_cast<std::size_t>(args.getInt("patience", 60));
    config.damping = static_cast<float>(args.getDouble("damping", 0.0));
    config.compiledReplay = !args.getBool("eager", false);
    const std::string assumption =
        args.getString("assumption", "hybrid");
    if (assumption == "independent")
        config.assumption = core::Assumption::Independent;
    else if (assumption == "correlated")
        config.assumption = core::Assumption::Correlated;
    else
        config.assumption = core::Assumption::Hybrid;

    const std::string name = args.getString("extractor", "smoothe");

    extract::ExtractOptions options;
    options.timeLimitSeconds = args.getDouble("time-limit", 10.0);
    options.seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));

    const bool incremental = args.getBool("incremental", false);
    const long epochsArg = args.getInt("epochs", incremental ? 2 : 0);

    const std::string output = args.getString("output", "");
    const bool validateResults = args.getBool("validate", false);
    // Hidden test hook, checked below once extraction has produced
    // telemetry: throw an uncaught exception so tests can assert that
    // the std::terminate flush hook leaves --trace-out/--report-out/
    // --profile-out files valid on a mid-run abort (tests/test_tools).
    const bool selftestTerminate =
        args.getBool("selftest-terminate", false);
    if (obs::reportUnknownFlags(args, "smoothe_extract") > 0)
        return 2;
    if (!output.empty() && graphs.size() > 1) {
        std::fprintf(stderr,
                     "error: --output requires a single --input\n");
        return 2;
    }
    // Strict --incremental validation: the warm-start path rides on the
    // compiled replay (Program::patch), so the eager fallback cannot
    // honor it; epochs only make sense with the protocol enabled.
    if (incremental && args.getBool("eager", false)) {
        std::fprintf(stderr,
                     "error: --incremental requires the compiled replay; "
                     "drop --eager\n");
        return 2;
    }
    if (args.has("epochs") && !incremental) {
        std::fprintf(stderr,
                     "error: --epochs requires --incremental\n");
        return 2;
    }
    if (incremental && epochsArg < 1) {
        std::fprintf(stderr, "error: --epochs must be >= 1\n");
        return 2;
    }
    const std::size_t epochs =
        incremental ? static_cast<std::size_t>(epochsArg) : 1;

    // One extractor per graph (extractors keep per-run diagnostics), run
    // concurrently on the pool. Results are collected per slot and
    // printed in input order afterwards, so stdout is deterministic.
    std::vector<std::unique_ptr<extract::Extractor>> extractors(
        graphs.size());
    for (std::size_t g = 0; g < graphs.size(); ++g) {
        extractors[g] = api::makeExtractor(name, config);
        if (!extractors[g]) {
            std::fprintf(stderr, "error: unknown extractor \"%s\"\n",
                         name.c_str());
            return 2;
        }
    }
    if (incremental && !extractors.front()->supportsIncremental()) {
        std::fprintf(stderr,
                     "error: extractor \"%s\" has no incremental "
                     "support\n",
                     name.c_str());
        return 2;
    }

    std::vector<extract::ExtractionResult> results(graphs.size());
    util::ThreadPool::global().parallelFor(
        0, graphs.size(), 1, [&](std::size_t g) {
            extract::ExtractOptions graphOptions = options;
            graphOptions.seed = graphSeed(options.seed, g);
            if (!incremental) {
                results[g] =
                    extractors[g]->extract(graphs[g], graphOptions);
                return;
            }
            // Epoch 0 runs cold into the state; later epochs replay
            // the incremental protocol under an identity delta (the
            // JSON graph is static), warm-starting from the carried
            // parameters. Each epoch bumps
            // extraction.<name>.incremental_runs.
            extract::IncrementalState state;
            const eg::GraphDelta delta =
                eg::GraphDelta::identity(graphs[g]);
            for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
                results[g] = extractors[g]->extractIncremental(
                    graphs[g], delta, state, graphOptions);
            }
        });

    if (selftestTerminate)
        throw std::runtime_error(
            "smoothe_extract: --selftest-terminate requested abort");

    if (obs::Report* report = obs::Report::current()) {
        report->setRun("extractor", name);
        report->setRun("graphs", graphs.size());
        obs::Measurement& cost =
            report->measurement("extract.cost").checked(false);
        obs::Measurement& seconds = report->measurement("extract.seconds")
                                        .unit("s")
                                        .checked(false);
        for (const auto& result : results) {
            if (result.ok())
                cost.add(result.cost);
            seconds.add(result.seconds);
        }
    }

    bool allOk = true;
    bool allValid = true;
    for (std::size_t g = 0; g < graphs.size(); ++g) {
        const auto& result = results[g];
        allOk = allOk && result.ok();
        std::string certification;
        if (validateResults) {
            const auto check = extract::validateResult(graphs[g], result);
            if (check.ok()) {
                certification = result.ok()
                                    ? ", validated (complete, acyclic, "
                                      "cost certified)"
                                    : ", validated";
            } else {
                allValid = false;
                certification = ", INVALID: " + check.message;
            }
        }
        if (graphs.size() > 1) {
            std::printf("%s: %s: %s, cost %.6g, %.3fs%s\n",
                        inputs[g].c_str(), extractors[g]->name().c_str(),
                        extract::toString(result.status), result.cost,
                        result.seconds, certification.c_str());
        } else {
            std::printf("%s: %s, cost %.6g, %.3fs%s\n",
                        extractors[g]->name().c_str(),
                        extract::toString(result.status), result.cost,
                        result.seconds, certification.c_str());
        }
    }

    if (!output.empty() && results.front().ok()) {
        const auto& result = results.front();
        const eg::EGraph& graph = graphs.front();
        util::Json choices = util::Json::makeObject();
        for (eg::ClassId cls = 0; cls < graph.numClasses(); ++cls) {
            if (result.selection.chosen(cls)) {
                choices.set(std::to_string(cls),
                            static_cast<double>(
                                result.selection.choice[cls]));
            }
        }
        util::Json doc = util::Json::makeObject();
        doc.set("extractor", extractors.front()->name());
        doc.set("status", extract::toString(result.status));
        doc.set("cost", result.cost);
        doc.set("seconds", result.seconds);
        doc.set("choices", std::move(choices));
        if (!util::writeFile(output, doc.dumpPretty())) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         output.c_str());
            return 1;
        }
    }
    return allOk && allValid ? 0 : 1;
}
