/**
 * @file
 * Command-line extractor, compatible with extraction-gym JSON e-graphs.
 *
 * Usage:
 *   smoothe_extract --input egraph.json [--extractor smoothe]
 *                   [--time-limit 10] [--seed 1] [--seeds 16]
 *                   [--assumption hybrid] [--lambda 8]
 *                   [--output selection.json]
 *                   [--log-level debug] [--log-json log.jsonl]
 *                   [--trace-out trace.json] [--metrics-out metrics.json]
 *
 * Prints a one-line summary (extractor, status, cost, time) and, when
 * --output is given, writes the chosen e-node per e-class as JSON:
 *   {"choices": {"<class>": <node>, ...}, "cost": ..., "status": "..."}
 */

#include <cstdio>
#include <string>

#include "api/factory.hpp"
#include "egraph/serialize.hpp"
#include "obs/cli.hpp"
#include "util/args.hpp"
#include "util/json.hpp"

int
main(int argc, char** argv)
{
    using namespace smoothe;
    const util::Args args(argc, argv);
    obs::installCliTelemetry(args);

    const std::string input = args.getString("input", "");
    if (input.empty()) {
        std::fprintf(stderr,
                     "usage: smoothe_extract --input egraph.json "
                     "[--extractor NAME] [--output out.json]\n"
                     "extractors:");
        for (const auto& name : api::extractorNames())
            std::fprintf(stderr, " %s", name.c_str());
        std::fprintf(stderr, "\n");
        return 2;
    }

    std::string error;
    auto graph = eg::loadFromFile(input, &error);
    if (!graph) {
        std::fprintf(stderr, "error: cannot load %s: %s\n", input.c_str(),
                     error.c_str());
        return 1;
    }

    core::SmoothEConfig config;
    config.numSeeds = static_cast<std::size_t>(args.getInt("seeds", 16));
    config.lambda = static_cast<float>(args.getDouble("lambda", 8.0));
    config.learningRate = static_cast<float>(args.getDouble("lr", 0.1));
    config.maxIterations =
        static_cast<std::size_t>(args.getInt("max-iters", 400));
    config.patience =
        static_cast<std::size_t>(args.getInt("patience", 60));
    config.damping = static_cast<float>(args.getDouble("damping", 0.0));
    const std::string assumption =
        args.getString("assumption", "hybrid");
    if (assumption == "independent")
        config.assumption = core::Assumption::Independent;
    else if (assumption == "correlated")
        config.assumption = core::Assumption::Correlated;
    else
        config.assumption = core::Assumption::Hybrid;

    const std::string name = args.getString("extractor", "smoothe");
    auto extractor = api::makeExtractor(name, config);
    if (!extractor) {
        std::fprintf(stderr, "error: unknown extractor \"%s\"\n",
                     name.c_str());
        return 2;
    }

    extract::ExtractOptions options;
    options.timeLimitSeconds = args.getDouble("time-limit", 10.0);
    options.seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));

    args.acknowledge("output");
    if (obs::reportUnknownFlags(args, "smoothe_extract") > 0)
        return 2;

    const auto result = extractor->extract(*graph, options);
    std::printf("%s: %s, cost %.6g, %.3fs\n", extractor->name().c_str(),
                extract::toString(result.status), result.cost,
                result.seconds);

    const std::string output = args.getString("output", "");
    if (!output.empty() && result.ok()) {
        util::Json choices = util::Json::makeObject();
        for (eg::ClassId cls = 0; cls < graph->numClasses(); ++cls) {
            if (result.selection.chosen(cls)) {
                choices.set(std::to_string(cls),
                            static_cast<double>(
                                result.selection.choice[cls]));
            }
        }
        util::Json doc = util::Json::makeObject();
        doc.set("extractor", extractor->name());
        doc.set("status", extract::toString(result.status));
        doc.set("cost", result.cost);
        doc.set("seconds", result.seconds);
        doc.set("choices", std::move(choices));
        if (!util::writeFile(output, doc.dumpPretty())) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         output.c_str());
            return 1;
        }
    }
    return result.ok() ? 0 : 1;
}
