/**
 * @file
 * Dataset generator CLI: materializes any of the seven e-graph families
 * (Table 1) as extraction-gym-compatible JSON files, so external
 * extractors can be compared against this repo's on identical inputs.
 *
 * Usage:
 *   egraph_gen --family rover [--scale 0.1] [--seed 2025] [--out DIR]
 *   egraph_gen --all [--scale 0.1] [--out DIR]
 *
 * --validate runs eg::EGraph::checkInvariants() on every generated
 * graph and fails the run on the first unhealthy one.
 */

#include <cstdio>
#include <string>

#include "datasets/registry.hpp"
#include "egraph/serialize.hpp"
#include "obs/cli.hpp"
#include "util/args.hpp"

int
main(int argc, char** argv)
{
    using namespace smoothe;
    const util::Args args(argc, argv);
    obs::installCliTelemetry(
        args, obs::toolNameFromArgv0(argc > 0 ? argv[0] : nullptr,
                                     "egraph_gen")
                  .c_str());
    const double scale = args.getDouble("scale", 0.1);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.getInt("seed", 2025));
    const std::string outDir = args.getString("out", ".");
    const bool all = args.getBool("all", false);
    const std::string family = args.getString("family", "");
    const bool validate = args.getBool("validate", false);

    if (obs::reportUnknownFlags(args, "egraph_gen") > 0)
        return 2;

    if (!all && family.empty()) {
        std::fprintf(stderr,
                     "usage: egraph_gen --family NAME | --all "
                     "[--scale S] [--seed N] [--out DIR]\nfamilies:");
        for (const auto& name : datasets::allFamilies())
            std::fprintf(stderr, " %s", name.c_str());
        std::fprintf(stderr, "\n");
        return 2;
    }

    std::vector<std::string> families;
    if (all)
        families = datasets::allFamilies();
    else
        families.push_back(family);

    for (const std::string& name : families) {
        const auto graphs = datasets::loadFamily(name, scale, seed);
        for (const auto& named : graphs) {
            if (validate) {
                if (const auto problem = named.graph.checkInvariants()) {
                    std::fprintf(stderr,
                                 "error: generated e-graph %s is "
                                 "corrupt: %s\n",
                                 named.name.c_str(), problem->c_str());
                    return 1;
                }
            }
            const std::string path =
                outDir + "/" + named.name + ".json";
            if (!eg::saveToFile(named.graph, path)) {
                std::fprintf(stderr, "error: cannot write %s\n",
                             path.c_str());
                return 1;
            }
            const auto& stats = named.graph.stats();
            std::printf("%-16s N=%-7zu M=%-7zu d=%.2f -> %s\n",
                        named.name.c_str(), stats.numNodes,
                        stats.numClasses, stats.avgDegree, path.c_str());
        }
    }
    return 0;
}
