/**
 * @file
 * Loads "smoothe.report" JSON files (emitted by the bench harness and
 * tools via --report-out), prints per-file summaries and side-by-side
 * comparison tables, and — with --check — gates a candidate report
 * against a committed baseline, exiting nonzero when any checked
 * measurement regresses beyond tolerance. CI's perf-gate job runs:
 *
 *   smoothe_report --check --baseline bench/baselines/micro_kernels.json \
 *       --tolerance 35 BENCH_micro_kernels.json
 *
 * Exit codes: 0 clean, 1 regression detected, 2 usage / I/O /
 * schema-validation error.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace smoothe;

namespace {

struct LoadedReport
{
    std::string path;
    util::Json doc;
};

/** Loads and schema-validates one report file; exits 2 on failure. */
LoadedReport
loadReport(const std::string& path)
{
    const auto text = util::readFile(path);
    if (!text) {
        std::fprintf(stderr, "smoothe_report: cannot read %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::string error;
    auto doc = util::Json::parse(*text, &error);
    if (!doc) {
        std::fprintf(stderr, "smoothe_report: %s: malformed JSON: %s\n",
                     path.c_str(), error.c_str());
        std::exit(2);
    }
    if (!obs::validateReportJson(*doc, &error)) {
        std::fprintf(stderr, "smoothe_report: %s: invalid report: %s\n",
                     path.c_str(), error.c_str());
        std::exit(2);
    }
    return LoadedReport{path, std::move(*doc)};
}

std::string
runString(const util::Json& doc, const char* key)
{
    const util::Json* run = doc.find("run");
    if (run == nullptr)
        return "?";
    const util::Json* value = run->find(key);
    if (value == nullptr)
        return "?";
    return value->isString() ? value->asString() : value->dump();
}

double
numberOr(const util::Json& object, const char* key, double fallback)
{
    const util::Json* value = object.find(key);
    return value != nullptr && value->isNumber() ? value->asNumber()
                                                 : fallback;
}

/** Per-file header plus measurement and phase tables. */
void
printSummary(const LoadedReport& report)
{
    std::printf("%s\n  tool=%s git=%s build=%s threads=%s\n",
                report.path.c_str(),
                runString(report.doc, "tool").c_str(),
                runString(report.doc, "gitSha").c_str(),
                runString(report.doc, "buildType").c_str(),
                runString(report.doc, "threads").c_str());

    const util::Json* measurements = report.doc.find("measurements");
    if (measurements != nullptr &&
        !measurements->asObject().empty()) {
        util::TablePrinter table(
            {"measurement", "mean", "stddev", "n", "unit", "gate"});
        for (const auto& [name, entry] : measurements->asObject()) {
            const util::Json* checked = entry.find("checked");
            const util::Json* unit = entry.find("unit");
            const util::Json* better = entry.find("better");
            const bool gated =
                checked == nullptr || !checked->isBool() ||
                checked->asBool();
            std::string gate = gated ? "checked" : "-";
            if (gated && better != nullptr && better->isString() &&
                better->asString() == "higher")
                gate += " (higher)";
            table.addRow({name, util::formatFixed(numberOr(entry, "mean", 0.0), 6),
                          util::formatFixed(numberOr(entry, "stddev", 0.0), 6),
                          util::formatFixed(numberOr(entry, "count", 0.0), 0),
                          unit != nullptr && unit->isString()
                              ? unit->asString()
                              : "",
                          gate});
        }
        table.print(std::cout);
    }

    const util::Json* phases = report.doc.find("phases");
    if (phases != nullptr && !phases->asObject().empty()) {
        util::TablePrinter table(
            {"phase", "count", "sum", "p50", "p90", "p99"});
        for (const auto& [name, entry] : phases->asObject()) {
            table.addRow({name,
                          util::formatFixed(numberOr(entry, "count", 0.0), 0),
                          util::formatSeconds(numberOr(entry, "sum", 0.0)) + "s",
                          util::formatSeconds(numberOr(entry, "p50", 0.0)) + "s",
                          util::formatSeconds(numberOr(entry, "p90", 0.0)) + "s",
                          util::formatSeconds(numberOr(entry, "p99", 0.0)) + "s"});
        }
        table.print(std::cout);
    }
    std::printf("\n");
}

/** Side-by-side mean comparison across every loaded file. */
void
printComparison(const std::vector<LoadedReport>& reports)
{
    std::vector<std::string> header{"measurement"};
    for (const auto& report : reports)
        header.push_back(report.path);
    if (reports.size() == 2)
        header.push_back("change");
    util::TablePrinter table(std::move(header));

    // Union of measurement names, first-seen order.
    std::vector<std::string> names;
    for (const auto& report : reports) {
        const util::Json* measurements =
            report.doc.find("measurements");
        if (measurements == nullptr)
            continue;
        for (const auto& [name, entry] : measurements->asObject()) {
            (void)entry;
            bool known = false;
            for (const auto& existing : names)
                known = known || existing == name;
            if (!known)
                names.push_back(name);
        }
    }

    for (const auto& name : names) {
        std::vector<std::string> row{name};
        std::vector<double> means;
        for (const auto& report : reports) {
            const util::Json* measurements =
                report.doc.find("measurements");
            const util::Json* entry = measurements == nullptr
                                          ? nullptr
                                          : measurements->find(name);
            if (entry == nullptr) {
                row.push_back("-");
                continue;
            }
            const double mean = numberOr(*entry, "mean", 0.0);
            means.push_back(mean);
            row.push_back(util::formatFixed(mean, 6));
        }
        if (reports.size() == 2) {
            if (means.size() == 2 && means[0] != 0.0) {
                const double pct =
                    100.0 * (means[1] - means[0]) / means[0];
                row.push_back((pct >= 0 ? "+" : "") +
                              util::formatFixed(pct, 1) + "%");
            } else {
                row.push_back("-");
            }
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
}

/** Baseline-vs-candidate gate; returns the process exit code. */
int
runCheck(const LoadedReport& baseline, const LoadedReport& candidate,
         double tolerance_pct)
{
    const auto findings =
        obs::checkReports(baseline.doc, candidate.doc, tolerance_pct);
    util::TablePrinter table({"measurement", "baseline", "candidate",
                              "change", "tolerance", "verdict"});
    std::size_t regressions = 0;
    for (const auto& finding : findings) {
        regressions += finding.regression ? 1 : 0;
        table.addRow(
            {finding.measurement, util::formatFixed(finding.baseline, 6),
             util::formatFixed(finding.candidate, 6),
             (finding.changePct >= 0 ? "+" : "") +
                 util::formatFixed(finding.changePct, 1) + "%",
             util::formatFixed(finding.tolerancePct, 1) + "%",
             finding.regression ? "REGRESSION" : "ok"});
    }
    std::printf("check: %s (baseline) vs %s (candidate)\n",
                baseline.path.c_str(), candidate.path.c_str());
    if (findings.empty()) {
        std::printf("no checked measurements in common; nothing gated\n");
        return 0;
    }
    table.print(std::cout);
    if (regressions > 0) {
        std::printf("%zu regression(s) beyond tolerance\n", regressions);
        return 1;
    }
    std::printf("all %zu checked measurement(s) within tolerance\n",
                findings.size());
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    const util::Args args(argc, argv);
    std::vector<std::string> files = args.positionals();

    // `--check candidate.json` parses the file as the switch's value;
    // fold any non-boolean value back into the file list.
    bool check = false;
    if (args.has("check")) {
        const std::string checkValue = args.getString("check", "");
        if (checkValue.empty() || checkValue == "true" ||
            checkValue == "1") {
            check = true;
        } else if (checkValue == "false" || checkValue == "0") {
            check = false;
        } else {
            check = true;
            files.insert(files.begin(), checkValue);
        }
    }
    const std::string baselinePath = args.getString("baseline", "");
    const double tolerance = args.getDouble("tolerance", 5.0);
    args.acknowledge("help");

    const auto unknown = args.unrecognized();
    if (!unknown.empty()) {
        for (const auto& flag : unknown)
            std::fprintf(stderr, "smoothe_report: unknown flag --%s\n",
                         flag.c_str());
        return 2;
    }
    if (args.getBool("help", false) ||
        (files.empty() && baselinePath.empty())) {
        std::printf(
            "usage: smoothe_report REPORT.json [MORE.json ...]\n"
            "       smoothe_report --check --baseline BASE.json "
            "[--tolerance PCT] CANDIDATE.json\n"
            "\n"
            "Prints summaries and comparisons of smoothe.report JSON\n"
            "files; --check exits 1 when the candidate regresses any\n"
            "checked measurement beyond tolerance (default 5%%).\n");
        return files.empty() && !args.getBool("help", false) ? 2 : 0;
    }

    if (check) {
        if (baselinePath.empty() || files.size() != 1) {
            std::fprintf(stderr,
                         "smoothe_report: --check needs --baseline "
                         "FILE and exactly one candidate report\n");
            return 2;
        }
        const LoadedReport baseline = loadReport(baselinePath);
        const LoadedReport candidate = loadReport(files.front());
        return runCheck(baseline, candidate, tolerance);
    }

    std::vector<LoadedReport> reports;
    for (const auto& path : files)
        reports.push_back(loadReport(path));
    if (!baselinePath.empty())
        reports.insert(reports.begin(), loadReport(baselinePath));
    for (const auto& report : reports)
        printSummary(report);
    if (reports.size() > 1)
        printComparison(reports);
    return 0;
}
