/**
 * @file
 * Loads "smoothe.report" JSON files (emitted by the bench harness and
 * tools via --report-out), prints per-file summaries and side-by-side
 * comparison tables, and — with --check — gates a candidate report
 * against a committed baseline, exiting nonzero when any checked
 * measurement regresses beyond tolerance. CI's perf-gate job runs:
 *
 *   smoothe_report --check --baseline bench/baselines/micro_kernels.json \
 *       --tolerance 35 BENCH_micro_kernels.json
 *
 * The `profile` subcommand renders the schema-v2 "profile" section
 * (per-kernel attribution from obs::Profiler) as a top-N table with
 * roofline estimates:
 *
 *   smoothe_report profile BENCH_micro_kernels.json [--top N]
 *
 * Exit codes: 0 clean, 1 regression detected, 2 usage / I/O /
 * schema-validation error.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace smoothe;

namespace {

struct LoadedReport
{
    std::string path;
    util::Json doc;
};

/** Loads and schema-validates one report file; exits 2 on failure. */
LoadedReport
loadReport(const std::string& path)
{
    const auto text = util::readFile(path);
    if (!text) {
        std::fprintf(stderr, "smoothe_report: cannot read %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::string error;
    auto doc = util::Json::parse(*text, &error);
    if (!doc) {
        std::fprintf(stderr, "smoothe_report: %s: malformed JSON: %s\n",
                     path.c_str(), error.c_str());
        std::exit(2);
    }
    if (!obs::validateReportJson(*doc, &error)) {
        std::fprintf(stderr, "smoothe_report: %s: invalid report: %s\n",
                     path.c_str(), error.c_str());
        std::exit(2);
    }
    return LoadedReport{path, std::move(*doc)};
}

std::string
runString(const util::Json& doc, const char* key)
{
    const util::Json* run = doc.find("run");
    if (run == nullptr)
        return "?";
    const util::Json* value = run->find(key);
    if (value == nullptr)
        return "?";
    return value->isString() ? value->asString() : value->dump();
}

double
numberOr(const util::Json& object, const char* key, double fallback)
{
    const util::Json* value = object.find(key);
    return value != nullptr && value->isNumber() ? value->asNumber()
                                                 : fallback;
}

/** Per-file header plus measurement and phase tables. */
void
printSummary(const LoadedReport& report)
{
    std::printf("%s\n  tool=%s git=%s build=%s threads=%s\n",
                report.path.c_str(),
                runString(report.doc, "tool").c_str(),
                runString(report.doc, "gitSha").c_str(),
                runString(report.doc, "buildType").c_str(),
                runString(report.doc, "threads").c_str());

    const util::Json* measurements = report.doc.find("measurements");
    if (measurements != nullptr &&
        !measurements->asObject().empty()) {
        util::TablePrinter table(
            {"measurement", "mean", "stddev", "n", "unit", "gate"});
        for (const auto& [name, entry] : measurements->asObject()) {
            const util::Json* checked = entry.find("checked");
            const util::Json* unit = entry.find("unit");
            const util::Json* better = entry.find("better");
            const bool gated =
                checked == nullptr || !checked->isBool() ||
                checked->asBool();
            std::string gate = gated ? "checked" : "-";
            if (gated && better != nullptr && better->isString() &&
                better->asString() == "higher")
                gate += " (higher)";
            table.addRow({name, util::formatFixed(numberOr(entry, "mean", 0.0), 6),
                          util::formatFixed(numberOr(entry, "stddev", 0.0), 6),
                          util::formatFixed(numberOr(entry, "count", 0.0), 0),
                          unit != nullptr && unit->isString()
                              ? unit->asString()
                              : "",
                          gate});
        }
        table.print(std::cout);
    }

    const util::Json* phases = report.doc.find("phases");
    if (phases != nullptr && !phases->asObject().empty()) {
        util::TablePrinter table(
            {"phase", "count", "sum", "p50", "p90", "p99"});
        for (const auto& [name, entry] : phases->asObject()) {
            table.addRow({name,
                          util::formatFixed(numberOr(entry, "count", 0.0), 0),
                          util::formatSeconds(numberOr(entry, "sum", 0.0)) + "s",
                          util::formatSeconds(numberOr(entry, "p50", 0.0)) + "s",
                          util::formatSeconds(numberOr(entry, "p90", 0.0)) + "s",
                          util::formatSeconds(numberOr(entry, "p99", 0.0)) + "s"});
        }
        table.print(std::cout);
    }
    std::printf("\n");
}

/**
 * Prints a note when two reports carry different schema versions (e.g.
 * a committed v1 baseline gating a v2 candidate). Versions are already
 * individually validated by loadReport; the note only explains why
 * sections like "profile" may appear on one side only.
 */
void
noteVersionMismatch(const LoadedReport& first, const LoadedReport& second)
{
    const int a = obs::reportSchemaVersion(first.doc);
    const int b = obs::reportSchemaVersion(second.doc);
    if (a != b) {
        std::printf("note: schema versions differ (%s is v%d, %s is "
                    "v%d); comparing the sections both share\n",
                    first.path.c_str(), a, second.path.c_str(), b);
    }
}

/** Side-by-side mean comparison across every loaded file. */
void
printComparison(const std::vector<LoadedReport>& reports)
{
    for (std::size_t i = 1; i < reports.size(); ++i)
        noteVersionMismatch(reports.front(), reports[i]);
    std::vector<std::string> header{"measurement"};
    for (const auto& report : reports)
        header.push_back(report.path);
    if (reports.size() == 2)
        header.push_back("change");
    util::TablePrinter table(std::move(header));

    // Union of measurement names, first-seen order.
    std::vector<std::string> names;
    for (const auto& report : reports) {
        const util::Json* measurements =
            report.doc.find("measurements");
        if (measurements == nullptr)
            continue;
        for (const auto& [name, entry] : measurements->asObject()) {
            (void)entry;
            bool known = false;
            for (const auto& existing : names)
                known = known || existing == name;
            if (!known)
                names.push_back(name);
        }
    }

    for (const auto& name : names) {
        std::vector<std::string> row{name};
        std::vector<double> means;
        for (const auto& report : reports) {
            const util::Json* measurements =
                report.doc.find("measurements");
            const util::Json* entry = measurements == nullptr
                                          ? nullptr
                                          : measurements->find(name);
            if (entry == nullptr) {
                row.push_back("-");
                continue;
            }
            const double mean = numberOr(*entry, "mean", 0.0);
            means.push_back(mean);
            row.push_back(util::formatFixed(mean, 6));
        }
        if (reports.size() == 2) {
            if (means.size() == 2 && means[0] != 0.0) {
                const double pct =
                    100.0 * (means[1] - means[0]) / means[0];
                // Built with += (not `"+" + std::string&&`): GCC 12's
                // -Wrestrict false positive (bug 105329) flags the
                // rvalue insert path under -mavx2 -Werror.
                std::string change = pct >= 0 ? "+" : "";
                change += util::formatFixed(pct, 1);
                change += "%";
                row.push_back(std::move(change));
            } else {
                row.push_back("-");
            }
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
}

/** Baseline-vs-candidate gate; returns the process exit code. */
int
runCheck(const LoadedReport& baseline, const LoadedReport& candidate,
         double tolerance_pct)
{
    noteVersionMismatch(baseline, candidate);
    const auto findings =
        obs::checkReports(baseline.doc, candidate.doc, tolerance_pct);
    util::TablePrinter table({"measurement", "baseline", "candidate",
                              "change", "tolerance", "verdict"});
    std::size_t regressions = 0;
    for (const auto& finding : findings) {
        regressions += finding.regression ? 1 : 0;
        // See printComparison for why this avoids `"+" + string&&`.
        std::string change = finding.changePct >= 0 ? "+" : "";
        change += util::formatFixed(finding.changePct, 1);
        change += "%";
        table.addRow(
            {finding.measurement, util::formatFixed(finding.baseline, 6),
             util::formatFixed(finding.candidate, 6), std::move(change),
             util::formatFixed(finding.tolerancePct, 1) + "%",
             finding.regression ? "REGRESSION" : "ok"});
    }
    std::printf("check: %s (baseline) vs %s (candidate)\n",
                baseline.path.c_str(), candidate.path.c_str());
    if (findings.empty()) {
        std::printf("no checked measurements in common; nothing gated\n");
        return 0;
    }
    table.print(std::cout);
    if (regressions > 0) {
        std::printf("%zu regression(s) beyond tolerance\n", regressions);
        return 1;
    }
    std::printf("all %zu checked measurement(s) within tolerance\n",
                findings.size());
    return 0;
}

/**
 * `smoothe_report profile REPORT.json`: renders the schema-v2 profile
 * section as a table of the top-N kernels by self time, with derived
 * GFLOP/s, arithmetic intensity (FLOP/byte), and IPC when hardware
 * counters were sampled. Returns the process exit code.
 */
int
runProfile(const LoadedReport& report, std::size_t top)
{
    const util::Json* profile = report.doc.find("profile");
    const util::Json* kernels =
        profile == nullptr ? nullptr : profile->find("kernels");
    if (kernels == nullptr || kernels->asObject().empty()) {
        std::fprintf(stderr,
                     "smoothe_report: %s has no profile section; rerun "
                     "the tool with --profile or --profile-out (schema "
                     "v%d file, profile needs v2)\n",
                     report.path.c_str(),
                     obs::reportSchemaVersion(report.doc));
        return 2;
    }

    struct Row
    {
        std::string name;
        double calls = 0.0;
        double self = 0.0;
        double flops = 0.0;
        double bytes = 0.0;
        double samples = 0.0;
        double cycles = 0.0;
        double instructions = 0.0;
    };
    std::vector<Row> rows;
    double selfSum = 0.0;
    for (const auto& [name, entry] : kernels->asObject()) {
        Row row;
        row.name = name;
        row.calls = numberOr(entry, "calls", 0.0);
        row.self = numberOr(entry, "selfSeconds", 0.0);
        row.flops = numberOr(entry, "flops", 0.0);
        row.bytes = numberOr(entry, "bytes", 0.0);
        row.samples = numberOr(entry, "counterSamples", 0.0);
        row.cycles = numberOr(entry, "cycles", 0.0);
        row.instructions = numberOr(entry, "instructions", 0.0);
        selfSum += row.self;
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.self > b.self; });

    double phaseTotal = 0.0;
    std::string phaseBreakdown;
    if (const util::Json* totals = profile->find("totals")) {
        for (const auto& [phase, entry] : totals->asObject()) {
            const double seconds = numberOr(entry, "seconds", 0.0);
            phaseTotal += seconds;
            if (!phaseBreakdown.empty())
                phaseBreakdown += " + ";
            phaseBreakdown += phase;
            phaseBreakdown += ' ';
            phaseBreakdown += util::formatSeconds(seconds);
            phaseBreakdown += 's';
        }
    }

    std::string perf = "?";
    if (const util::Json* perfInfo = profile->find("perf")) {
        const util::Json* status = perfInfo->find("status");
        if (status != nullptr && status->isString())
            perf = status->asString();
    }
    std::printf("%s\n  tool=%s stride=%.0f perf: %s\n",
                report.path.c_str(),
                runString(report.doc, "tool").c_str(),
                numberOr(*profile, "stride", 1.0), perf.c_str());

    // Share is against the instrumented phase total when present; the
    // boundary-sampled replays make kernel self times sum to it, so
    // shares add up to ~100% and the coverage line below is a sanity
    // check, not an estimate.
    const double denom = phaseTotal > 0.0 ? phaseTotal : selfSum;
    util::TablePrinter table({"kernel", "calls", "self", "share",
                              "GFLOP/s", "FLOP/B", "IPC"});
    const std::size_t shown = std::min(top, rows.size());
    for (std::size_t i = 0; i < shown; ++i) {
        const Row& row = rows[i];
        const double gflops =
            row.self > 0.0 ? row.flops / row.self / 1e9 : 0.0;
        const double intensity =
            row.bytes > 0.0 ? row.flops / row.bytes : 0.0;
        table.addRow(
            {row.name, util::formatFixed(row.calls, 0),
             util::formatSeconds(row.self) + "s",
             util::formatFixed(
                 denom > 0.0 ? 100.0 * row.self / denom : 0.0, 1) +
                 "%",
             util::formatFixed(gflops, 2),
             util::formatFixed(intensity, 2),
             row.samples > 0.0 && row.cycles > 0.0
                 ? util::formatFixed(row.instructions / row.cycles, 2)
                 : "-"});
    }
    table.print(std::cout);
    if (shown < rows.size())
        std::printf("(%zu more kernels below the top %zu)\n",
                    rows.size() - shown, shown);
    if (phaseTotal > 0.0) {
        std::printf("kernel self times cover %.1f%% of instrumented "
                    "phase time (%s)\n",
                    100.0 * selfSum / phaseTotal,
                    phaseBreakdown.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    const util::Args args(argc, argv);
    std::vector<std::string> files = args.positionals();

    // Subcommand: `smoothe_report profile REPORT.json [--top N]`.
    bool profileMode = false;
    if (!files.empty() && files.front() == "profile") {
        profileMode = true;
        files.erase(files.begin());
    }
    const std::int64_t top = args.getInt("top", 20);

    // `--check candidate.json` parses the file as the switch's value;
    // fold any non-boolean value back into the file list.
    bool check = false;
    if (args.has("check")) {
        const std::string checkValue = args.getString("check", "");
        if (checkValue.empty() || checkValue == "true" ||
            checkValue == "1") {
            check = true;
        } else if (checkValue == "false" || checkValue == "0") {
            check = false;
        } else {
            check = true;
            files.insert(files.begin(), checkValue);
        }
    }
    const std::string baselinePath = args.getString("baseline", "");
    const double tolerance = args.getDouble("tolerance", 5.0);
    args.acknowledge("help");

    const auto unknown = args.unrecognized();
    if (!unknown.empty()) {
        for (const auto& flag : unknown)
            std::fprintf(stderr, "smoothe_report: unknown flag --%s\n",
                         flag.c_str());
        return 2;
    }
    if (args.getBool("help", false) ||
        (files.empty() && baselinePath.empty())) {
        std::printf(
            "usage: smoothe_report REPORT.json [MORE.json ...]\n"
            "       smoothe_report --check --baseline BASE.json "
            "[--tolerance PCT] CANDIDATE.json\n"
            "       smoothe_report profile REPORT.json [--top N]\n"
            "\n"
            "Prints summaries and comparisons of smoothe.report JSON\n"
            "files; --check exits 1 when the candidate regresses any\n"
            "checked measurement beyond tolerance (default 5%%);\n"
            "`profile` prints the top-N kernel attribution table from\n"
            "a schema-v2 report's profile section.\n");
        return files.empty() && !args.getBool("help", false) ? 2 : 0;
    }

    if (profileMode) {
        if (files.size() != 1) {
            std::fprintf(stderr,
                         "smoothe_report: profile needs exactly one "
                         "report file\n");
            return 2;
        }
        const LoadedReport report = loadReport(files.front());
        return runProfile(report,
                          top > 0 ? static_cast<std::size_t>(top) : 20);
    }

    if (check) {
        if (baselinePath.empty() || files.size() != 1) {
            std::fprintf(stderr,
                         "smoothe_report: --check needs --baseline "
                         "FILE and exactly one candidate report\n");
            return 2;
        }
        const LoadedReport baseline = loadReport(baselinePath);
        const LoadedReport candidate = loadReport(files.front());
        return runCheck(baseline, candidate, tolerance);
    }

    std::vector<LoadedReport> reports;
    for (const auto& path : files)
        reports.push_back(loadReport(path));
    if (!baselinePath.empty())
        reports.insert(reports.begin(), loadReport(baselinePath));
    for (const auto& report : reports)
        printSummary(report);
    if (reports.size() > 1)
        printComparison(reports);
    return 0;
}
