/**
 * @file
 * smoothe_lint: the project's own static analyzer (DESIGN.md
 * "Correctness tooling & static analysis").
 *
 * Usage:
 *   smoothe_lint [--root DIR] [--json] [--list-rules] PATH...
 *
 * PATHs are files or directories (scanned recursively for
 * .hpp/.h/.cpp/.cc), interpreted relative to --root (default: the
 * current directory). Exits 0 when clean, 1 when there are findings or
 * unreadable paths, 2 on usage errors. Suppress a deliberate violation
 * with `// smoothe-lint: allow(<rule>)` on or directly above the line.
 *
 * CI runs `smoothe_lint --root . src tools bench tests` as the
 * `lint_sources` ctest; see .github/workflows/ci.yml.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint/linter.hpp"

namespace {

int
usage(const char* program)
{
    std::fprintf(stderr,
                 "usage: %s [--root DIR] [--json] [--list-rules] PATH...\n",
                 program);
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace smoothe;

    std::string root = ".";
    bool json = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--json") == 0) {
            json = true;
        } else if (std::strcmp(arg, "--root") == 0) {
            if (i + 1 >= argc)
                return usage(argv[0]);
            root = argv[++i];
        } else if (std::strncmp(arg, "--root=", 7) == 0) {
            root = arg + 7;
        } else if (std::strcmp(arg, "--list-rules") == 0) {
            for (const lint::RuleInfo& rule : lint::ruleCatalog())
                std::printf("%-16s %s\n", rule.name, rule.summary);
            return 0;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage(argv[0]);
            return 0;
        } else if (std::strncmp(arg, "--", 2) == 0) {
            std::fprintf(stderr, "%s: unrecognized flag %s\n", argv[0], arg);
            return usage(argv[0]);
        } else {
            paths.emplace_back(arg);
        }
    }
    if (paths.empty())
        return usage(argv[0]);

    const lint::LintReport report = lint::lintPaths(root, paths);
    if (json)
        std::printf("%s\n", lint::renderJson(report).dumpPretty().c_str());
    else
        std::fputs(lint::renderText(report).c_str(), stdout);
    return report.clean() ? 0 : 1;
}
