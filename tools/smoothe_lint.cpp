/**
 * @file
 * smoothe_lint: the project's own static analyzer (DESIGN.md
 * "Correctness tooling & static analysis" and "Static analysis v2").
 *
 * Usage:
 *   smoothe_lint [--root DIR] [--json] [--sarif-out FILE]
 *                [--rules a,b,...] [--baseline FILE] [--write-baseline]
 *                [--report-out FILE] [--list-rules] [--explain RULE]
 *                PATH...
 *
 * PATHs are files or directories (scanned recursively for
 * .hpp/.h/.cpp/.cc), interpreted relative to --root (default: the
 * current directory). Exits 0 when clean, 1 when there are findings or
 * unreadable paths, 2 on usage errors. Suppress a deliberate violation
 * with `// smoothe-lint: allow(<rule>)` on or directly above the line;
 * park a whole rule's pre-existing findings in a baseline file with
 * --write-baseline and subtract them with --baseline.
 *
 * --sarif-out writes a SARIF 2.1.0 report for CI annotation upload;
 * --report-out records `lint.runtime_ms` through obs::Report so the
 * perf gate catches analyzer slowdowns (budget: full tree < 2 s).
 *
 * CI runs `smoothe_lint --root . src tools bench tests` as the
 * `lint_sources` ctest; see .github/workflows/ci.yml.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint/baseline.hpp"
#include "lint/linter.hpp"
#include "lint/sarif.hpp"
#include "obs/report.hpp"
#include "util/json.hpp"

namespace {

int
usage(const char* program)
{
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--json] [--sarif-out FILE]\n"
        "          [--rules a,b,...] [--baseline FILE] "
        "[--write-baseline]\n"
        "          [--report-out FILE] [--list-rules] [--explain RULE] "
        "PATH...\n",
        program);
    return 2;
}

std::vector<std::string>
splitCommas(const std::string& list)
{
    std::vector<std::string> out;
    std::string name;
    for (const char c : list) {
        if (c == ',') {
            if (!name.empty())
                out.push_back(name);
            name.clear();
        } else {
            name.push_back(c);
        }
    }
    if (!name.empty())
        out.push_back(name);
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace smoothe;

    std::string root = ".";
    bool json = false;
    bool writeBaseline = false;
    std::string sarifOut;
    std::string baselinePath;
    std::string reportOut;
    lint::LintOptions options;
    std::vector<std::string> paths;

    const auto valueOf = [&](const char* flag, int& i,
                             std::string& into) -> bool {
        const std::size_t flagLen = std::strlen(flag);
        if (std::strcmp(argv[i], flag) == 0) {
            if (i + 1 >= argc)
                return false;
            into = argv[++i];
            return true;
        }
        if (std::strncmp(argv[i], flag, flagLen) == 0 &&
            argv[i][flagLen] == '=') {
            into = argv[i] + flagLen + 1;
            return true;
        }
        return false;
    };

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        std::string value;
        if (std::strcmp(arg, "--json") == 0) {
            json = true;
        } else if (std::strcmp(arg, "--write-baseline") == 0) {
            writeBaseline = true;
        } else if (valueOf("--root", i, root) ||
                   valueOf("--sarif-out", i, sarifOut) ||
                   valueOf("--baseline", i, baselinePath) ||
                   valueOf("--report-out", i, reportOut)) {
            // value captured
        } else if (valueOf("--rules", i, value)) {
            options.rules = splitCommas(value);
            for (const std::string& name : options.rules) {
                if (lint::findRule(name) == nullptr) {
                    std::fprintf(stderr, "%s: unknown rule %s\n", argv[0],
                                 name.c_str());
                    return 2;
                }
            }
        } else if (valueOf("--explain", i, value)) {
            const lint::RuleInfo* info = lint::findRule(value);
            if (info == nullptr) {
                std::fprintf(stderr,
                             "%s: unknown rule %s (try --list-rules)\n",
                             argv[0], value.c_str());
                return 2;
            }
            std::printf("%s — %s\n\nWhy: %s\n\nFix: %s\n", info->name,
                        info->summary, info->rationale, info->fix);
            return 0;
        } else if (std::strcmp(arg, "--list-rules") == 0) {
            for (const lint::RuleInfo& rule : lint::ruleCatalog())
                std::printf("%-24s %s\n", rule.name, rule.summary);
            return 0;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage(argv[0]);
            return 0;
        } else if (std::strncmp(arg, "--", 2) == 0) {
            std::fprintf(stderr, "%s: unrecognized flag %s\n", argv[0], arg);
            return usage(argv[0]);
        } else {
            paths.emplace_back(arg);
        }
    }
    if (paths.empty())
        return usage(argv[0]);
    if (writeBaseline && baselinePath.empty()) {
        std::fprintf(stderr, "%s: --write-baseline needs --baseline FILE\n",
                     argv[0]);
        return 2;
    }

    if (!reportOut.empty())
        obs::Report::install("smoothe_lint", reportOut);

    const auto started = std::chrono::steady_clock::now();
    lint::LintReport report = lint::lintPaths(root, paths, options);
    const double runtimeMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - started)
            .count();

    if (obs::Report* installed = obs::Report::current()) {
        installed->measurement("lint.runtime_ms").unit("ms").add(runtimeMs);
        installed->measurement("lint.files_scanned")
            .unit("files")
            .checked(false)
            .add(static_cast<double>(report.filesScanned));
        installed->measurement("lint.findings")
            .unit("count")
            .checked(false)
            .add(static_cast<double>(report.findings.size()));
        obs::Report::flushCurrent();
    }

    if (writeBaseline) {
        const util::Json doc = lint::renderBaseline(report.findings);
        if (!util::writeFile(baselinePath, doc.dumpPretty() + "\n")) {
            std::fprintf(stderr, "%s: cannot write baseline %s\n", argv[0],
                         baselinePath.c_str());
            return 2;
        }
        std::printf("smoothe_lint: wrote %zu suppression%s to %s\n",
                    report.findings.size(),
                    report.findings.size() == 1 ? "" : "s",
                    baselinePath.c_str());
        return 0;
    }

    if (!baselinePath.empty()) {
        const auto text = util::readFile(baselinePath);
        if (!text) {
            std::fprintf(stderr, "%s: cannot read baseline %s\n", argv[0],
                         baselinePath.c_str());
            return 2;
        }
        std::string error;
        const auto doc = util::Json::parse(*text, &error);
        lint::Baseline baseline;
        if (!doc || !lint::parseBaseline(*doc, baseline, &error)) {
            std::fprintf(stderr, "%s: bad baseline %s: %s\n", argv[0],
                         baselinePath.c_str(), error.c_str());
            return 2;
        }
        report.findings =
            lint::applyBaseline(baseline, std::move(report.findings));
    }

    if (!sarifOut.empty()) {
        const util::Json sarif = lint::renderSarif(report);
        if (!util::writeFile(sarifOut, sarif.dumpPretty() + "\n")) {
            std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                         sarifOut.c_str());
            return 2;
        }
    }

    if (json)
        std::printf("%s\n", lint::renderJson(report).dumpPretty().c_str());
    else
        std::fputs(lint::renderText(report).c_str(), stdout);
    return report.clean() ? 0 : 1;
}
