/**
 * @file
 * Non-linear cost models end to end (Section 5.5): train an MLP cost
 * correction on synthetic data, then extract with SmoothE (which
 * optimizes the true differentiable objective), the genetic baseline, and
 * the linear-oracle proxy ILP*.
 *
 * Run: ./build/examples/nonlinear_cost [--scale 0.1]
 */

#include <cstdio>
#include <memory>

#include "costmodel/cost_model.hpp"
#include "datasets/generators.hpp"
#include "extraction/genetic.hpp"
#include "ilp/ilp_extractor.hpp"
#include "smoothe/smoothe.hpp"
#include "util/args.hpp"

int
main(int argc, char** argv)
{
    using namespace smoothe;
    const util::Args args(argc, argv);
    const double scale = args.getDouble("scale", 0.1);

    datasets::FamilyParams params = datasets::roverParams();
    params.numClasses = static_cast<std::size_t>(params.numClasses * scale);
    const eg::EGraph graph = datasets::generateStructured(params, 321);
    std::printf("e-graph: N=%zu, M=%zu\n", graph.numNodes(),
                graph.numClasses());

    // Cost model: linear area + trained MLP correction (clustering
    // effects a linear model cannot see).
    util::Rng rng(17);
    auto linear = std::make_shared<cost::LinearCost>(graph);
    auto mlp = std::make_shared<cost::MlpCost>(graph.numNodes(), rng);
    util::Rng trainRng(18);
    const double mse = mlp->trainSynthetic(graph, 48, 60, trainRng);
    std::printf("MLP trained on 48 synthetic samples, final MSE %.4f\n",
                mse);
    const cost::CompositeCost model(linear, mlp, 1.0f);

    extract::ExtractOptions options;
    options.seed = 4;

    // SmoothE differentiates straight through the MLP.
    core::SmoothEConfig config;
    config.numSeeds = 16;
    config.maxIterations = 200;
    core::SmoothEExtractor smoothe(config);
    const auto smootheResult = smoothe.extractWithCost(graph, model,
                                                       options);
    std::printf("%-10s cost %10.2f  time %6.2fs\n", "SmoothE",
                smootheResult.cost, smootheResult.seconds);

    // Genetic: black-box, no gradients.
    extract::GeneticExtractor genetic;
    const auto geneticResult = genetic.extractWithCost(
        graph,
        [&](const eg::EGraph& g, const extract::Selection& sel) {
            return model.discrete(sel.toNodeIndicator(g));
        },
        options);
    std::printf("%-10s cost %10.2f  time %6.2fs\n", "genetic",
                geneticResult.cost, geneticResult.seconds);

    // ILP*: optimize the linear part only, re-score under the full model.
    ilp::IlpExtractor ilp(ilp::IlpPreset::Strong);
    extract::ExtractOptions ilpOptions;
    ilpOptions.timeLimitSeconds = 10.0;
    const auto oracle = ilp.extract(graph, ilpOptions);
    if (oracle.ok()) {
        const double rescored =
            model.discrete(oracle.selection.toNodeIndicator(graph));
        std::printf("%-10s cost %10.2f  time %6.2fs (linear proxy)\n",
                    "ILP*", rescored, oracle.seconds);
    }
    return smootheResult.ok() ? 0 : 1;
}
