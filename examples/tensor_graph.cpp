/**
 * @file
 * Tensor-graph superoptimization scenario (the tensat workload that
 * motivates the paper's introduction): extract the fastest equivalent
 * computation graph from a large, cyclic e-graph under per-operator GPU
 * execution-time costs, and compare the anytime behaviour of SmoothE
 * against an exact ILP under a time budget.
 *
 * Run: ./build/examples/tensor_graph [--scale 0.2] [--time-limit 5]
 */

#include <cstdio>

#include "datasets/generators.hpp"
#include "extraction/bottom_up.hpp"
#include "ilp/ilp_extractor.hpp"
#include "smoothe/smoothe.hpp"
#include "util/args.hpp"

int
main(int argc, char** argv)
{
    using namespace smoothe;
    const util::Args args(argc, argv);
    const double scale = args.getDouble("scale", 0.15);
    const double timeLimit = args.getDouble("time-limit", 5.0);

    // A BERT-like tensor-graph e-graph (structure-matched synthetic; see
    // DESIGN.md substitutions).
    auto instances = datasets::tensatNamedInstances(scale, 99);
    const auto& bert = instances[2];
    const auto& stats = bert.graph.stats();
    std::printf("e-graph \"%s\": N=%zu, M=%zu, d(v)=%.2f, density=%.2e\n",
                bert.name.c_str(), stats.numNodes, stats.numClasses,
                stats.avgDegree, stats.density);

    extract::ExtractOptions options;
    options.seed = 3;
    options.timeLimitSeconds = timeLimit;
    options.recordTrace = true;

    extract::FasterBottomUpExtractor heuristic;
    const auto greedy = heuristic.extract(bert.graph, options);
    std::printf("%-12s cost %10.2f   time %6.2fs\n", "heuristic+",
                greedy.cost, greedy.seconds);

    ilp::IlpExtractor ilp(ilp::IlpPreset::Strong);
    const auto exact = ilp.extract(bert.graph, options);
    std::printf("%-12s cost %10.2f   time %6.2fs (%s)\n", "ILP", exact.cost,
                exact.seconds, extract::toString(exact.status));

    core::SmoothEConfig config;
    config.numSeeds = 16;
    config.maxIterations = 300;
    core::SmoothEExtractor smoothe(config);
    const auto result = smoothe.extractWithCost(
        bert.graph, cost::LinearCost(bert.graph), options);
    std::printf("%-12s cost %10.2f   time %6.2fs (%zu iters)\n", "SmoothE",
                result.cost, result.seconds,
                smoothe.diagnostics().iterations);

    // Anytime curve: how fast each method reaches its final quality.
    std::printf("\nSmoothE anytime trace (time s -> cost):\n");
    for (const auto& point : result.trace)
        std::printf("  %6.2f  %10.2f\n", point.seconds, point.cost);
    return result.ok() ? 0 : 1;
}
