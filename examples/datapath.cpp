/**
 * @file
 * Datapath synthesis scenario (the rover workload): minimize circuit area
 * for FIR-filter-style arithmetic kernels. Demonstrates per-instance
 * extraction across a family and the assumption hyper-parameter.
 *
 * Run: ./build/examples/datapath [--scale 0.2]
 */

#include <cstdio>

#include "datasets/generators.hpp"
#include "extraction/bottom_up.hpp"
#include "smoothe/smoothe.hpp"
#include "util/args.hpp"

int
main(int argc, char** argv)
{
    using namespace smoothe;
    const util::Args args(argc, argv);
    const double scale = args.getDouble("scale", 0.15);

    auto instances = datasets::roverNamedInstances(scale, 7);
    std::printf("%-8s %10s %12s %12s %10s\n", "kernel", "e-nodes",
                "heuristic", "SmoothE", "saving");

    for (const auto& named : instances) {
        extract::FasterBottomUpExtractor heuristic;
        const auto greedy = heuristic.extract(named.graph, {});

        // rover uses the independent assumption in the paper's Table 2.
        core::SmoothEConfig config;
        config.assumption = core::Assumption::Independent;
        config.numSeeds = 16;
        config.maxIterations = 150;
        core::SmoothEExtractor smoothe(config);
        extract::ExtractOptions options;
        options.seed = 11;
        const auto result = smoothe.extract(named.graph, options);

        const double saving =
            greedy.cost > 0.0 ? (greedy.cost - result.cost) / greedy.cost
                              : 0.0;
        std::printf("%-8s %10zu %12.1f %12.1f %9.1f%%\n",
                    named.name.c_str(), named.graph.numNodes(),
                    greedy.cost, result.cost, saving * 100.0);
    }
    return 0;
}
