/**
 * @file
 * NP-hard problems as e-graph extraction (the paper's adversarial
 * datasets, Section 5.3): encode a weighted minimum set-cover instance as
 * an e-graph, then watch the extractor hierarchy invert versus the
 * realistic datasets — ILP is instantly optimal, tree-cost heuristics
 * overpay by integer factors, and SmoothE lands in between.
 *
 * Run: ./build/examples/adversarial [--elements 60] [--sets 14]
 */

#include <cstdio>

#include "datasets/nphard.hpp"
#include "extraction/bottom_up.hpp"
#include "ilp/ilp_extractor.hpp"
#include "smoothe/smoothe.hpp"
#include "util/args.hpp"

int
main(int argc, char** argv)
{
    using namespace smoothe;
    const util::Args args(argc, argv);
    const std::size_t elements =
        static_cast<std::size_t>(args.getInt("elements", 60));
    const std::size_t sets =
        static_cast<std::size_t>(args.getInt("sets", 14));

    util::Rng rng(7);
    const auto instance =
        datasets::randomSetCover(elements, sets, 5.0, rng);
    const eg::EGraph graph = datasets::setCoverToEGraph(instance);
    std::printf("set cover: %zu elements, %zu sets -> e-graph N=%zu, "
                "M=%zu\n\n",
                elements, sets, graph.numNodes(), graph.numClasses());

    extract::ExtractOptions options;
    options.seed = 1;
    options.timeLimitSeconds = 30.0;

    ilp::IlpExtractor ilp(ilp::IlpPreset::Strong);
    const auto exact = ilp.extract(graph, options);
    std::printf("%-12s cost %8.1f  time %6.2fs (%s)\n", "ILP", exact.cost,
                exact.seconds, extract::toString(exact.status));

    extract::BottomUpExtractor heuristic;
    const auto greedy = heuristic.extract(graph, options);
    std::printf("%-12s cost %8.1f  time %6.2fs  (%.1fx optimal)\n",
                "heuristic", greedy.cost, greedy.seconds,
                exact.ok() ? greedy.cost / exact.cost : 0.0);

    core::SmoothEConfig config;
    config.numSeeds = 32;
    config.maxIterations = 250;
    core::SmoothEExtractor smoothe(config);
    const auto relaxed = smoothe.extract(graph, options);
    std::printf("%-12s cost %8.1f  time %6.2fs  (%.1fx optimal)\n",
                "SmoothE", relaxed.cost, relaxed.seconds,
                exact.ok() ? relaxed.cost / exact.cost : 0.0);

    // Show which sets each method actually bought.
    auto selectedSets = [&](const extract::Selection& sel) {
        std::size_t count = 0;
        for (eg::ClassId cls = 0; cls < graph.numClasses(); ++cls) {
            if (sel.chosen(cls) &&
                graph.node(sel.choice[cls]).op.rfind("set_", 0) == 0)
                ++count;
        }
        return count;
    };
    if (exact.ok() && relaxed.ok() && greedy.ok()) {
        std::printf("\nsets bought: ILP %zu, SmoothE %zu, heuristic %zu\n",
                    selectedSets(exact.selection),
                    selectedSets(relaxed.selection),
                    selectedSets(greedy.selection));
    }
    return exact.ok() ? 0 : 1;
}
