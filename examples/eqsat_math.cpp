/**
 * @file
 * Equality saturation from scratch: start from a term, apply rewrite
 * rules to saturation, export the e-graph, and extract the cheapest
 * equivalent program — the full Section 2 workflow on a trigonometric
 * simplification task.
 *
 * Run: ./build/examples/eqsat_math "(+ (square (sec a)) (tan a))"
 */

#include <cstdio>
#include <string>

#include "eqsat/mut_egraph.hpp"
#include "eqsat/term.hpp"
#include "extraction/bottom_up.hpp"
#include "smoothe/smoothe.hpp"

int
main(int argc, char** argv)
{
    using namespace smoothe;

    const std::string input =
        argc > 1 ? argv[1] : "(+ (square (sec a)) (tan a))";
    auto term = eqsat::parseTerm(input);
    if (!term) {
        std::fprintf(stderr, "cannot parse term: %s\n", input.c_str());
        return 1;
    }
    std::printf("input term: %s\n", (*term)->toString().c_str());

    // Rewrite rules (the paper's two, plus algebraic identities).
    const std::vector<eqsat::Rewrite> rules = {
        eqsat::rewrite("sec-to-cos", "(sec ?x)", "(recip (cos ?x))"),
        eqsat::rewrite("sec2-to-tan2", "(square (sec ?x))",
                       "(+ one (square (tan ?x)))"),
        eqsat::rewrite("add-comm", "(+ ?a ?b)", "(+ ?b ?a)"),
        eqsat::rewrite("mul-comm", "(* ?a ?b)", "(* ?b ?a)"),
        eqsat::rewrite("mul-one", "(* ?a one)", "?a"),
        eqsat::rewrite("square-as-mul", "(square ?x)", "(* ?x ?x)"),
    };

    eqsat::MutEGraph mut;
    const auto root = mut.addTerm(**term);
    eqsat::RunLimits limits;
    limits.maxIterations = 8;
    limits.maxNodes = 20000;
    const auto stats = mut.run(rules, limits);
    std::printf("saturation: %zu iterations, %zu e-nodes, %zu e-classes, "
                "%s\n",
                stats.iterations, stats.finalNodes, stats.finalClasses,
                stats.saturated ? "saturated" : "limit reached");

    // Operator cost model (trig functions expensive, arithmetic cheap).
    const eg::EGraph graph = mut.exportGraph(
        root, [](const std::string& op, std::size_t) -> double {
            if (op == "a" || op == "one")
                return 0.0;
            if (op == "+")
                return 2.0;
            if (op == "*" || op == "square" || op == "recip")
                return 5.0;
            return 10.0; // sec / cos / tan / ...
        });

    extract::BottomUpExtractor heuristic;
    const auto greedy = heuristic.extract(graph, {});
    std::printf("heuristic extraction: cost %.1f\n", greedy.cost);

    core::SmoothEConfig config;
    config.numSeeds = 16;
    config.maxIterations = 200;
    core::SmoothEExtractor smoothe(config);
    extract::ExtractOptions options;
    options.seed = 7;
    const auto best = smoothe.extract(graph, options);
    std::printf("SmoothE extraction  : cost %.1f (%.2fs)\n", best.cost,
                best.seconds);
    return best.ok() ? 0 : 1;
}
