/**
 * @file
 * Quickstart: build an e-graph by hand, extract with the heuristic, ILP,
 * and SmoothE, and compare the results.
 *
 * This walks the paper's running example (Figures 1-3): the expression
 * sec^2(a) + tan(a) after applying the rewrites
 *   sec a      -> 1 / cos a
 *   sec^2 a    -> 1 + tan^2 a
 * The bottom-up heuristic returns cost 27; the optimum (reusing the
 * shared tan a subexpression) costs 19. SmoothE finds the optimum in a
 * few dozen gradient steps.
 *
 * Run: ./build/examples/quickstart
 */

#include <cstdio>

#include "datasets/generators.hpp"
#include "extraction/bottom_up.hpp"
#include "ilp/ilp_extractor.hpp"
#include "smoothe/smoothe.hpp"

int
main()
{
    using namespace smoothe;

    // 1. Build (or load) an e-graph. Here: the paper's Figure 2 example.
    const eg::EGraph graph = datasets::paperExampleEGraph();
    std::printf("e-graph: %zu e-nodes in %zu e-classes\n",
                graph.numNodes(), graph.numClasses());

    // 2. egg-style bottom-up heuristic (fast, tree-cost, misses reuse).
    extract::BottomUpExtractor heuristic;
    const auto heuristicResult = heuristic.extract(graph, {});
    std::printf("heuristic : cost %6.1f  (%.3fs)\n", heuristicResult.cost,
                heuristicResult.seconds);

    // 3. Exact ILP (branch-and-bound on the paper's Eq. (1) formulation).
    ilp::IlpExtractor ilp(ilp::IlpPreset::Strong);
    const auto ilpResult = ilp.extract(graph, {});
    std::printf("ILP       : cost %6.1f  (%.3fs, %s)\n", ilpResult.cost,
                ilpResult.seconds, extract::toString(ilpResult.status));

    // 4. SmoothE: differentiable extraction with seed batching.
    core::SmoothEConfig config;
    config.numSeeds = 16;
    config.maxIterations = 200;
    core::SmoothEExtractor smoothe(config);
    extract::ExtractOptions options;
    options.seed = 1;
    const auto smootheResult = smoothe.extract(graph, options);
    std::printf("SmoothE   : cost %6.1f  (%.3fs, %zu iterations)\n",
                smootheResult.cost, smootheResult.seconds,
                smoothe.diagnostics().iterations);

    // 5. Inspect the SmoothE extraction.
    std::printf("\nSmoothE selection:\n");
    for (eg::ClassId cls = 0; cls < graph.numClasses(); ++cls) {
        if (!smootheResult.selection.chosen(cls))
            continue;
        const auto& node =
            graph.node(smootheResult.selection.choice[cls]);
        std::printf("  class %u -> %-7s (cost %.1f)\n", cls,
                    node.op.c_str(), node.cost);
    }
    return smootheResult.ok() ? 0 : 1;
}
