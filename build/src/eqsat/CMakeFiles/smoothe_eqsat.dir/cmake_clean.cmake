file(REMOVE_RECURSE
  "CMakeFiles/smoothe_eqsat.dir/mut_egraph.cpp.o"
  "CMakeFiles/smoothe_eqsat.dir/mut_egraph.cpp.o.d"
  "CMakeFiles/smoothe_eqsat.dir/rules.cpp.o"
  "CMakeFiles/smoothe_eqsat.dir/rules.cpp.o.d"
  "CMakeFiles/smoothe_eqsat.dir/term.cpp.o"
  "CMakeFiles/smoothe_eqsat.dir/term.cpp.o.d"
  "libsmoothe_eqsat.a"
  "libsmoothe_eqsat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothe_eqsat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
