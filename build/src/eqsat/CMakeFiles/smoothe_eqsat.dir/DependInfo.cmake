
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eqsat/mut_egraph.cpp" "src/eqsat/CMakeFiles/smoothe_eqsat.dir/mut_egraph.cpp.o" "gcc" "src/eqsat/CMakeFiles/smoothe_eqsat.dir/mut_egraph.cpp.o.d"
  "/root/repo/src/eqsat/rules.cpp" "src/eqsat/CMakeFiles/smoothe_eqsat.dir/rules.cpp.o" "gcc" "src/eqsat/CMakeFiles/smoothe_eqsat.dir/rules.cpp.o.d"
  "/root/repo/src/eqsat/term.cpp" "src/eqsat/CMakeFiles/smoothe_eqsat.dir/term.cpp.o" "gcc" "src/eqsat/CMakeFiles/smoothe_eqsat.dir/term.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/egraph/CMakeFiles/smoothe_egraph.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/smoothe_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/smoothe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
