# Empty compiler generated dependencies file for smoothe_eqsat.
# This may be replaced when dependencies are built.
