file(REMOVE_RECURSE
  "libsmoothe_eqsat.a"
)
