# Empty dependencies file for smoothe_api.
# This may be replaced when dependencies are built.
