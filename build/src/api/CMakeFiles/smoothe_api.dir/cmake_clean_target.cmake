file(REMOVE_RECURSE
  "libsmoothe_api.a"
)
