file(REMOVE_RECURSE
  "CMakeFiles/smoothe_api.dir/factory.cpp.o"
  "CMakeFiles/smoothe_api.dir/factory.cpp.o.d"
  "libsmoothe_api.a"
  "libsmoothe_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothe_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
