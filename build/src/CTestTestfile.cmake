# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("obs")
subdirs("egraph")
subdirs("eqsat")
subdirs("tensor")
subdirs("autodiff")
subdirs("costmodel")
subdirs("extraction")
subdirs("ilp")
subdirs("smoothe")
subdirs("datasets")
subdirs("api")
