file(REMOVE_RECURSE
  "libsmoothe_extraction.a"
)
