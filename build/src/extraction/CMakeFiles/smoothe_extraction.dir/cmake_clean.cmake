file(REMOVE_RECURSE
  "CMakeFiles/smoothe_extraction.dir/bottom_up.cpp.o"
  "CMakeFiles/smoothe_extraction.dir/bottom_up.cpp.o.d"
  "CMakeFiles/smoothe_extraction.dir/extractor.cpp.o"
  "CMakeFiles/smoothe_extraction.dir/extractor.cpp.o.d"
  "CMakeFiles/smoothe_extraction.dir/genetic.cpp.o"
  "CMakeFiles/smoothe_extraction.dir/genetic.cpp.o.d"
  "CMakeFiles/smoothe_extraction.dir/greedy_dag.cpp.o"
  "CMakeFiles/smoothe_extraction.dir/greedy_dag.cpp.o.d"
  "CMakeFiles/smoothe_extraction.dir/random_sample.cpp.o"
  "CMakeFiles/smoothe_extraction.dir/random_sample.cpp.o.d"
  "CMakeFiles/smoothe_extraction.dir/solution.cpp.o"
  "CMakeFiles/smoothe_extraction.dir/solution.cpp.o.d"
  "libsmoothe_extraction.a"
  "libsmoothe_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothe_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
