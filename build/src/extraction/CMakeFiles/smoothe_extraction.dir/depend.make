# Empty dependencies file for smoothe_extraction.
# This may be replaced when dependencies are built.
