
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extraction/bottom_up.cpp" "src/extraction/CMakeFiles/smoothe_extraction.dir/bottom_up.cpp.o" "gcc" "src/extraction/CMakeFiles/smoothe_extraction.dir/bottom_up.cpp.o.d"
  "/root/repo/src/extraction/extractor.cpp" "src/extraction/CMakeFiles/smoothe_extraction.dir/extractor.cpp.o" "gcc" "src/extraction/CMakeFiles/smoothe_extraction.dir/extractor.cpp.o.d"
  "/root/repo/src/extraction/genetic.cpp" "src/extraction/CMakeFiles/smoothe_extraction.dir/genetic.cpp.o" "gcc" "src/extraction/CMakeFiles/smoothe_extraction.dir/genetic.cpp.o.d"
  "/root/repo/src/extraction/greedy_dag.cpp" "src/extraction/CMakeFiles/smoothe_extraction.dir/greedy_dag.cpp.o" "gcc" "src/extraction/CMakeFiles/smoothe_extraction.dir/greedy_dag.cpp.o.d"
  "/root/repo/src/extraction/random_sample.cpp" "src/extraction/CMakeFiles/smoothe_extraction.dir/random_sample.cpp.o" "gcc" "src/extraction/CMakeFiles/smoothe_extraction.dir/random_sample.cpp.o.d"
  "/root/repo/src/extraction/solution.cpp" "src/extraction/CMakeFiles/smoothe_extraction.dir/solution.cpp.o" "gcc" "src/extraction/CMakeFiles/smoothe_extraction.dir/solution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/egraph/CMakeFiles/smoothe_egraph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/smoothe_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/smoothe_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
