file(REMOVE_RECURSE
  "libsmoothe_util.a"
)
