# Empty compiler generated dependencies file for smoothe_util.
# This may be replaced when dependencies are built.
