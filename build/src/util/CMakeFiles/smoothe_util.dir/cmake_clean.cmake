file(REMOVE_RECURSE
  "CMakeFiles/smoothe_util.dir/args.cpp.o"
  "CMakeFiles/smoothe_util.dir/args.cpp.o.d"
  "CMakeFiles/smoothe_util.dir/json.cpp.o"
  "CMakeFiles/smoothe_util.dir/json.cpp.o.d"
  "CMakeFiles/smoothe_util.dir/rng.cpp.o"
  "CMakeFiles/smoothe_util.dir/rng.cpp.o.d"
  "CMakeFiles/smoothe_util.dir/table.cpp.o"
  "CMakeFiles/smoothe_util.dir/table.cpp.o.d"
  "libsmoothe_util.a"
  "libsmoothe_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothe_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
