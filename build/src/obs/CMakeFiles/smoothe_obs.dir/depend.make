# Empty dependencies file for smoothe_obs.
# This may be replaced when dependencies are built.
