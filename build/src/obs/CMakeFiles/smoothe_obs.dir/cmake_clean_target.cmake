file(REMOVE_RECURSE
  "libsmoothe_obs.a"
)
