file(REMOVE_RECURSE
  "CMakeFiles/smoothe_obs.dir/cli.cpp.o"
  "CMakeFiles/smoothe_obs.dir/cli.cpp.o.d"
  "CMakeFiles/smoothe_obs.dir/log.cpp.o"
  "CMakeFiles/smoothe_obs.dir/log.cpp.o.d"
  "CMakeFiles/smoothe_obs.dir/metrics.cpp.o"
  "CMakeFiles/smoothe_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/smoothe_obs.dir/trace.cpp.o"
  "CMakeFiles/smoothe_obs.dir/trace.cpp.o.d"
  "libsmoothe_obs.a"
  "libsmoothe_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothe_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
