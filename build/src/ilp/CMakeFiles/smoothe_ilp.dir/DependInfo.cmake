
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ilp/ilp_extractor.cpp" "src/ilp/CMakeFiles/smoothe_ilp.dir/ilp_extractor.cpp.o" "gcc" "src/ilp/CMakeFiles/smoothe_ilp.dir/ilp_extractor.cpp.o.d"
  "/root/repo/src/ilp/lp.cpp" "src/ilp/CMakeFiles/smoothe_ilp.dir/lp.cpp.o" "gcc" "src/ilp/CMakeFiles/smoothe_ilp.dir/lp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extraction/CMakeFiles/smoothe_extraction.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/smoothe_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/egraph/CMakeFiles/smoothe_egraph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/smoothe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
