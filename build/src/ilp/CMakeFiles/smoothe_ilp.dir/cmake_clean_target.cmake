file(REMOVE_RECURSE
  "libsmoothe_ilp.a"
)
