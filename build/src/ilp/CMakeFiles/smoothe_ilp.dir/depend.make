# Empty dependencies file for smoothe_ilp.
# This may be replaced when dependencies are built.
