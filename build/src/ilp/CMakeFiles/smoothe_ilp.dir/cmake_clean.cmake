file(REMOVE_RECURSE
  "CMakeFiles/smoothe_ilp.dir/ilp_extractor.cpp.o"
  "CMakeFiles/smoothe_ilp.dir/ilp_extractor.cpp.o.d"
  "CMakeFiles/smoothe_ilp.dir/lp.cpp.o"
  "CMakeFiles/smoothe_ilp.dir/lp.cpp.o.d"
  "libsmoothe_ilp.a"
  "libsmoothe_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothe_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
