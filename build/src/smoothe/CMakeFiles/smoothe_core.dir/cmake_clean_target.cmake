file(REMOVE_RECURSE
  "libsmoothe_core.a"
)
