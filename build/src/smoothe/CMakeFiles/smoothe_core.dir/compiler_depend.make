# Empty compiler generated dependencies file for smoothe_core.
# This may be replaced when dependencies are built.
