file(REMOVE_RECURSE
  "CMakeFiles/smoothe_core.dir/sampler.cpp.o"
  "CMakeFiles/smoothe_core.dir/sampler.cpp.o.d"
  "CMakeFiles/smoothe_core.dir/smoothe.cpp.o"
  "CMakeFiles/smoothe_core.dir/smoothe.cpp.o.d"
  "libsmoothe_core.a"
  "libsmoothe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
