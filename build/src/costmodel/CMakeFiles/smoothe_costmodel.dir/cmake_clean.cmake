file(REMOVE_RECURSE
  "CMakeFiles/smoothe_costmodel.dir/cost_model.cpp.o"
  "CMakeFiles/smoothe_costmodel.dir/cost_model.cpp.o.d"
  "libsmoothe_costmodel.a"
  "libsmoothe_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothe_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
