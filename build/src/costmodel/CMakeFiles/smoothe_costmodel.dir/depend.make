# Empty dependencies file for smoothe_costmodel.
# This may be replaced when dependencies are built.
