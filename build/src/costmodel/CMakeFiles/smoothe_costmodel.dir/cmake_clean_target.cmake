file(REMOVE_RECURSE
  "libsmoothe_costmodel.a"
)
