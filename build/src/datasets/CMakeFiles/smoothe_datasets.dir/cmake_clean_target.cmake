file(REMOVE_RECURSE
  "libsmoothe_datasets.a"
)
