# Empty dependencies file for smoothe_datasets.
# This may be replaced when dependencies are built.
