file(REMOVE_RECURSE
  "CMakeFiles/smoothe_datasets.dir/eqsat_grown.cpp.o"
  "CMakeFiles/smoothe_datasets.dir/eqsat_grown.cpp.o.d"
  "CMakeFiles/smoothe_datasets.dir/generators.cpp.o"
  "CMakeFiles/smoothe_datasets.dir/generators.cpp.o.d"
  "CMakeFiles/smoothe_datasets.dir/nphard.cpp.o"
  "CMakeFiles/smoothe_datasets.dir/nphard.cpp.o.d"
  "CMakeFiles/smoothe_datasets.dir/registry.cpp.o"
  "CMakeFiles/smoothe_datasets.dir/registry.cpp.o.d"
  "libsmoothe_datasets.a"
  "libsmoothe_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothe_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
