file(REMOVE_RECURSE
  "CMakeFiles/smoothe_egraph.dir/egraph.cpp.o"
  "CMakeFiles/smoothe_egraph.dir/egraph.cpp.o.d"
  "CMakeFiles/smoothe_egraph.dir/serialize.cpp.o"
  "CMakeFiles/smoothe_egraph.dir/serialize.cpp.o.d"
  "libsmoothe_egraph.a"
  "libsmoothe_egraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothe_egraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
