# Empty compiler generated dependencies file for smoothe_egraph.
# This may be replaced when dependencies are built.
