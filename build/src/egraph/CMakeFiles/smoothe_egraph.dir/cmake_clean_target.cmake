file(REMOVE_RECURSE
  "libsmoothe_egraph.a"
)
