# Empty dependencies file for smoothe_tensor.
# This may be replaced when dependencies are built.
