file(REMOVE_RECURSE
  "libsmoothe_tensor.a"
)
