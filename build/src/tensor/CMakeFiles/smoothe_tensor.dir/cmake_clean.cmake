file(REMOVE_RECURSE
  "CMakeFiles/smoothe_tensor.dir/tensor.cpp.o"
  "CMakeFiles/smoothe_tensor.dir/tensor.cpp.o.d"
  "libsmoothe_tensor.a"
  "libsmoothe_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothe_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
