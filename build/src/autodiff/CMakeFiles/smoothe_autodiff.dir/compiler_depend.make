# Empty compiler generated dependencies file for smoothe_autodiff.
# This may be replaced when dependencies are built.
