
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autodiff/adam.cpp" "src/autodiff/CMakeFiles/smoothe_autodiff.dir/adam.cpp.o" "gcc" "src/autodiff/CMakeFiles/smoothe_autodiff.dir/adam.cpp.o.d"
  "/root/repo/src/autodiff/gradcheck.cpp" "src/autodiff/CMakeFiles/smoothe_autodiff.dir/gradcheck.cpp.o" "gcc" "src/autodiff/CMakeFiles/smoothe_autodiff.dir/gradcheck.cpp.o.d"
  "/root/repo/src/autodiff/matexp.cpp" "src/autodiff/CMakeFiles/smoothe_autodiff.dir/matexp.cpp.o" "gcc" "src/autodiff/CMakeFiles/smoothe_autodiff.dir/matexp.cpp.o.d"
  "/root/repo/src/autodiff/tape.cpp" "src/autodiff/CMakeFiles/smoothe_autodiff.dir/tape.cpp.o" "gcc" "src/autodiff/CMakeFiles/smoothe_autodiff.dir/tape.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/smoothe_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/smoothe_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/smoothe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
