file(REMOVE_RECURSE
  "libsmoothe_autodiff.a"
)
