file(REMOVE_RECURSE
  "CMakeFiles/smoothe_autodiff.dir/adam.cpp.o"
  "CMakeFiles/smoothe_autodiff.dir/adam.cpp.o.d"
  "CMakeFiles/smoothe_autodiff.dir/gradcheck.cpp.o"
  "CMakeFiles/smoothe_autodiff.dir/gradcheck.cpp.o.d"
  "CMakeFiles/smoothe_autodiff.dir/matexp.cpp.o"
  "CMakeFiles/smoothe_autodiff.dir/matexp.cpp.o.d"
  "CMakeFiles/smoothe_autodiff.dir/tape.cpp.o"
  "CMakeFiles/smoothe_autodiff.dir/tape.cpp.o.d"
  "libsmoothe_autodiff.a"
  "libsmoothe_autodiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothe_autodiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
