file(REMOVE_RECURSE
  "CMakeFiles/nonlinear_cost.dir/nonlinear_cost.cpp.o"
  "CMakeFiles/nonlinear_cost.dir/nonlinear_cost.cpp.o.d"
  "nonlinear_cost"
  "nonlinear_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonlinear_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
