# Empty compiler generated dependencies file for nonlinear_cost.
# This may be replaced when dependencies are built.
