# Empty dependencies file for tensor_graph.
# This may be replaced when dependencies are built.
