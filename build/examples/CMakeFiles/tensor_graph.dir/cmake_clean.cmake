file(REMOVE_RECURSE
  "CMakeFiles/tensor_graph.dir/tensor_graph.cpp.o"
  "CMakeFiles/tensor_graph.dir/tensor_graph.cpp.o.d"
  "tensor_graph"
  "tensor_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
