# Empty dependencies file for datapath.
# This may be replaced when dependencies are built.
