file(REMOVE_RECURSE
  "CMakeFiles/adversarial.dir/adversarial.cpp.o"
  "CMakeFiles/adversarial.dir/adversarial.cpp.o.d"
  "adversarial"
  "adversarial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
