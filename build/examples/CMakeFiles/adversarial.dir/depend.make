# Empty dependencies file for adversarial.
# This may be replaced when dependencies are built.
