# Empty dependencies file for eqsat_math.
# This may be replaced when dependencies are built.
