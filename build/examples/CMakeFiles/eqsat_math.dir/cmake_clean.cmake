file(REMOVE_RECURSE
  "CMakeFiles/eqsat_math.dir/eqsat_math.cpp.o"
  "CMakeFiles/eqsat_math.dir/eqsat_math.cpp.o.d"
  "eqsat_math"
  "eqsat_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqsat_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
