# Empty dependencies file for smoke_observability.
# This may be replaced when dependencies are built.
