file(REMOVE_RECURSE
  "CMakeFiles/smoke_observability.dir/smoke_observability.cpp.o"
  "CMakeFiles/smoke_observability.dir/smoke_observability.cpp.o.d"
  "smoke_observability"
  "smoke_observability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoke_observability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
