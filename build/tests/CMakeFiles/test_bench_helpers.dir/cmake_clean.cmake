file(REMOVE_RECURSE
  "CMakeFiles/test_bench_helpers.dir/test_bench_helpers.cpp.o"
  "CMakeFiles/test_bench_helpers.dir/test_bench_helpers.cpp.o.d"
  "test_bench_helpers"
  "test_bench_helpers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_helpers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
