# Empty dependencies file for test_bench_helpers.
# This may be replaced when dependencies are built.
