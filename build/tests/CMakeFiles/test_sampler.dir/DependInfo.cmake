
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sampler.cpp" "tests/CMakeFiles/test_sampler.dir/test_sampler.cpp.o" "gcc" "tests/CMakeFiles/test_sampler.dir/test_sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/smoothe_api.dir/DependInfo.cmake"
  "/root/repo/build/src/smoothe/CMakeFiles/smoothe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/smoothe_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/smoothe_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/eqsat/CMakeFiles/smoothe_eqsat.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/smoothe_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/extraction/CMakeFiles/smoothe_extraction.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/smoothe_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/smoothe_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/egraph/CMakeFiles/smoothe_egraph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/smoothe_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/smoothe_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
