file(REMOVE_RECURSE
  "CMakeFiles/test_smoothe.dir/test_smoothe.cpp.o"
  "CMakeFiles/test_smoothe.dir/test_smoothe.cpp.o.d"
  "test_smoothe"
  "test_smoothe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smoothe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
