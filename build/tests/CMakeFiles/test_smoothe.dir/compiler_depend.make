# Empty compiler generated dependencies file for test_smoothe.
# This may be replaced when dependencies are built.
