file(REMOVE_RECURSE
  "CMakeFiles/test_eqsat.dir/test_eqsat.cpp.o"
  "CMakeFiles/test_eqsat.dir/test_eqsat.cpp.o.d"
  "test_eqsat"
  "test_eqsat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eqsat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
