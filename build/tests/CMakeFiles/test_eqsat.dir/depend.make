# Empty dependencies file for test_eqsat.
# This may be replaced when dependencies are built.
