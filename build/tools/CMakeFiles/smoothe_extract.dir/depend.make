# Empty dependencies file for smoothe_extract.
# This may be replaced when dependencies are built.
