file(REMOVE_RECURSE
  "CMakeFiles/smoothe_extract.dir/smoothe_extract.cpp.o"
  "CMakeFiles/smoothe_extract.dir/smoothe_extract.cpp.o.d"
  "smoothe_extract"
  "smoothe_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothe_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
