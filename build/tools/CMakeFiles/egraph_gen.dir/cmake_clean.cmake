file(REMOVE_RECURSE
  "CMakeFiles/egraph_gen.dir/egraph_gen.cpp.o"
  "CMakeFiles/egraph_gen.dir/egraph_gen.cpp.o.d"
  "egraph_gen"
  "egraph_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/egraph_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
