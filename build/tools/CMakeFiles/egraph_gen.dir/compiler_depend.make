# Empty compiler generated dependencies file for egraph_gen.
# This may be replaced when dependencies are built.
