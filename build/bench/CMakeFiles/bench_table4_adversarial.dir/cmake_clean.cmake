file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_adversarial.dir/bench_table4_adversarial.cpp.o"
  "CMakeFiles/bench_table4_adversarial.dir/bench_table4_adversarial.cpp.o.d"
  "bench_table4_adversarial"
  "bench_table4_adversarial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
