file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_linear.dir/bench_table2_linear.cpp.o"
  "CMakeFiles/bench_table2_linear.dir/bench_table2_linear.cpp.o.d"
  "bench_table2_linear"
  "bench_table2_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
