# Empty compiler generated dependencies file for bench_fig4_anytime.
# This may be replaced when dependencies are built.
