file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_anytime.dir/bench_fig4_anytime.cpp.o"
  "CMakeFiles/bench_fig4_anytime.dir/bench_fig4_anytime.cpp.o.d"
  "bench_fig4_anytime"
  "bench_fig4_anytime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_anytime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
