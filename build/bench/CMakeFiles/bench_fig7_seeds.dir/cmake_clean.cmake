file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_seeds.dir/bench_fig7_seeds.cpp.o"
  "CMakeFiles/bench_fig7_seeds.dir/bench_fig7_seeds.cpp.o.d"
  "bench_fig7_seeds"
  "bench_fig7_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
