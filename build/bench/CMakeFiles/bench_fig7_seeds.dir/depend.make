# Empty dependencies file for bench_fig7_seeds.
# This may be replaced when dependencies are built.
