file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_portability.dir/bench_table5_portability.cpp.o"
  "CMakeFiles/bench_table5_portability.dir/bench_table5_portability.cpp.o.d"
  "bench_table5_portability"
  "bench_table5_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
