# Empty dependencies file for bench_table5_portability.
# This may be replaced when dependencies are built.
