file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_mlp.dir/bench_fig5_mlp.cpp.o"
  "CMakeFiles/bench_fig5_mlp.dir/bench_fig5_mlp.cpp.o.d"
  "bench_fig5_mlp"
  "bench_fig5_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
