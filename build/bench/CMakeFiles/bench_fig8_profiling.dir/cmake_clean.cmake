file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_profiling.dir/bench_fig8_profiling.cpp.o"
  "CMakeFiles/bench_fig8_profiling.dir/bench_fig8_profiling.cpp.o.d"
  "bench_fig8_profiling"
  "bench_fig8_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
