/**
 * @file
 * Regenerates Figure 7: seed-batching sweep on rover's box_3 e-graph.
 * For B in {1, 2, 4, ..., 256}: average extracted cost and variance over
 * repeated runs (orange curve) and wall-clock latency (blue curve).
 * Expected shape: cost and variance fall as B grows; latency grows far
 * slower than linearly while the "device" is underutilized.
 *
 * Run: ./build/bench/bench_fig7_seeds [--scale 0.1] [--max-seeds 256]
 */

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "smoothe/smoothe.hpp"

using namespace smoothe;

int
main(int argc, char** argv)
{
    const bench::BenchOptions options =
        bench::BenchOptions::parse(argc, argv, {"max-seeds"});
    const util::Args args(argc, argv);
    const std::size_t maxSeeds = static_cast<std::size_t>(
        args.getInt("max-seeds", options.quick ? 64 : 256));

    // box_3 at 3x the sweep scale: the seed-batching effect needs a graph
    // with enough local optima that single seeds get stuck (Figure 7 uses
    // a full-size instance).
    auto rover =
        datasets::roverNamedInstances(options.scale * 3.0, options.seed);
    const auto& box3 = rover[4]; // box_3
    std::printf("=== Figure 7: seed batching on %s (N=%zu, M=%zu) ===\n\n",
                box3.name.c_str(), box3.graph.numNodes(),
                box3.graph.numClasses());

    util::TablePrinter table({"B (seeds)", "avg cost", "max diff",
                              "latency (s)"});
    for (std::size_t seeds = 1; seeds <= maxSeeds; seeds *= 2) {
        double lo = 1e300;
        double hi = -1e300;
        double costSum = 0.0;
        double timeSum = 0.0;
        std::size_t ok = 0;
        for (std::size_t run = 0; run < options.runs; ++run) {
            core::SmoothEConfig config;
            config.numSeeds = seeds;
            config.maxIterations = 150;
            core::SmoothEExtractor smoothe(config);
            extract::ExtractOptions runOptions;
            runOptions.seed = options.seed + 17 * run;
            runOptions.timeLimitSeconds = options.timeLimit;
            const auto result = smoothe.extract(box3.graph, runOptions);
            timeSum += result.seconds;
            if (result.ok()) {
                ++ok;
                costSum += result.cost;
                lo = std::min(lo, result.cost);
                hi = std::max(hi, result.cost);
            }
        }
        if (ok == 0) {
            table.addRow({std::to_string(seeds), "Fails", "-", "-"});
            continue;
        }
        table.addRow({std::to_string(seeds),
                      util::formatFixed(costSum / ok, 1),
                      util::formatFixed(hi - lo, 1),
                      util::formatFixed(timeSum / options.runs, 2)});
    }
    table.print(std::cout);
    return 0;
}
