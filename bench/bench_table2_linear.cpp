/**
 * @file
 * Regenerates Table 2: linear-cost comparison across the five realistic
 * datasets. Columns: three ILP presets (standing in for CPLEX / SCIP /
 * CBC), the egg heuristic, heuristic+, and SmoothE (3 runs, reporting the
 * mean and max deviation). Quality is the normalized cost increase over
 * an oracle obtained by running the strong ILP with a long budget.
 *
 * The per-family parent-correlation assumption follows the paper:
 * diospyros/rover/tensat use independent, flexc/impress use correlated.
 *
 * Run: ./build/bench/bench_table2_linear [--scale 0.1] [--time-limit 10]
 *      [--sweep-assumption] (extra ablation over all three assumptions)
 */

#include <cstdio>
#include <iostream>
#include <map>

#include "bench/common.hpp"
#include "extraction/bottom_up.hpp"
#include "ilp/ilp_extractor.hpp"
#include "smoothe/smoothe.hpp"

using namespace smoothe;

namespace {

core::Assumption
paperAssumption(const std::string& family)
{
    // The paper grid-searches the assumption per dataset (Section 5.1);
    // we do the same on our structure-matched instances (run with
    // --sweep-assumption to regenerate): flexc favors independent,
    // rover/tensat correlated, diospyros/impress hybrid.
    if (family == "flexc")
        return core::Assumption::Independent;
    if (family == "rover" || family == "tensat")
        return core::Assumption::Correlated;
    return core::Assumption::Hybrid;
}

struct MethodStats
{
    std::vector<double> increases;
    std::vector<double> seconds;
    std::size_t fails = 0;

    void
    record(const extract::ExtractionResult& result, double oracle)
    {
        seconds.push_back(result.seconds);
        if (!result.ok()) {
            ++fails;
            return;
        }
        increases.push_back(
            std::max(0.0, bench::normalizedIncrease(result.cost, oracle)));
    }

    std::string
    cell() const
    {
        double timeSum = 0.0;
        for (double s : seconds)
            timeSum += s;
        const double meanTime =
            seconds.empty() ? 0.0 : timeSum / seconds.size();
        std::string top = util::formatSeconds(meanTime);
        if (fails > 0)
            top += " (" + std::to_string(fails) + ")";
        double worst = 0.0;
        for (double inc : increases)
            worst = std::max(worst, inc);
        // Geometric mean of (1 + increase) - 1 to match the paper's geo
        // averaging of normalized quality.
        std::vector<double> shifted;
        for (double inc : increases)
            shifted.push_back(1.0 + inc);
        const double avg = shifted.empty()
                               ? 0.0
                               : bench::geometricMean(shifted) - 1.0;
        std::string bottom =
            fails > 0 && increases.empty()
                ? "Failed / Failed"
                : bench::worstAvgCell(worst, avg,
                                      increases.empty() ? fails : 0);
        return top + " | " + bottom;
    }

    /** Records the headline aggregates (mean seconds, geo-avg quality
     *  increase, fail count) into the process report, unchecked. */
    void
    publish(const std::string& key) const
    {
        double timeSum = 0.0;
        for (double s : seconds)
            timeSum += s;
        bench::reportScalar(key + ".mean_seconds",
                            seconds.empty() ? 0.0
                                            : timeSum / seconds.size(),
                            "s")
            ->checked(false);
        std::vector<double> shifted;
        for (double inc : increases)
            shifted.push_back(1.0 + inc);
        bench::reportScalar(key + ".geo_avg_increase",
                            shifted.empty()
                                ? 0.0
                                : bench::geometricMean(shifted) - 1.0)
            ->checked(false);
        bench::reportScalar(key + ".fails",
                            static_cast<double>(fails))
            ->checked(false);
    }
};

} // namespace

int
main(int argc, char** argv)
{
    const bench::BenchOptions options =
        bench::BenchOptions::parse(argc, argv, {"sweep-assumption"});
    const util::Args args(argc, argv);
    const bool sweepAssumption = args.getBool("sweep-assumption", false);

    std::printf("=== Table 2: linear cost model, 5 realistic datasets ===\n");
    std::printf("scale %.2f, ILP time limit %.1fs, SmoothE %zu runs\n\n",
                options.scale, options.timeLimit, options.runs);

    util::TablePrinter table({"Dataset", "ILP-strong (CPLEX-like)",
                              "ILP-medium (SCIP-like)",
                              "ILP-weak (CBC-like)", "Heuristic (egg)",
                              "Heuristic+", "SmoothE (ours)"});

    for (const std::string& family : datasets::realisticFamilies()) {
        const auto graphs = options.capGraphs(
            datasets::loadFamily(family, options.scale, options.seed));

        // Oracle: strong ILP with a generous budget per graph.
        std::vector<double> oracle(graphs.size());
        for (std::size_t g = 0; g < graphs.size(); ++g) {
            ilp::IlpExtractor solver(ilp::IlpPreset::Strong);
            extract::ExtractOptions oracleOptions;
            oracleOptions.timeLimitSeconds = 2.0 * options.timeLimit;
            const auto result = solver.extract(graphs[g].graph,
                                               oracleOptions);
            oracle[g] = result.ok() ? result.cost : 1.0;
        }

        MethodStats ilpStrong;
        MethodStats ilpMedium;
        MethodStats ilpWeak;
        MethodStats heuristicStats;
        MethodStats heuristicPlusStats;
        MethodStats smootheStats;

        for (std::size_t g = 0; g < graphs.size(); ++g) {
            const eg::EGraph& graph = graphs[g].graph;
            extract::ExtractOptions timed;
            timed.timeLimitSeconds = options.timeLimit;

            {
                ilp::IlpExtractor solver(ilp::IlpPreset::Strong);
                ilpStrong.record(solver.extract(graph, timed), oracle[g]);
            }
            {
                ilp::IlpExtractor solver(ilp::IlpPreset::Medium);
                ilpMedium.record(solver.extract(graph, timed), oracle[g]);
            }
            {
                ilp::IlpExtractor solver(ilp::IlpPreset::Weak);
                ilpWeak.record(solver.extract(graph, timed), oracle[g]);
            }
            {
                extract::BottomUpExtractor heuristic;
                heuristicStats.record(heuristic.extract(graph, {}),
                                      oracle[g]);
            }
            {
                extract::FasterBottomUpExtractor heuristicPlus;
                heuristicPlusStats.record(heuristicPlus.extract(graph, {}),
                                          oracle[g]);
            }
            for (std::size_t run = 0; run < options.runs; ++run) {
                core::SmoothEConfig config;
                config.assumption = paperAssumption(family);
                config.numSeeds = 64;
                config.maxIterations = 300;
                config.patience = 80;
                core::SmoothEExtractor smoothe(config);
                extract::ExtractOptions smootheOptions;
                smootheOptions.seed = options.seed + run * 101 + g;
                smootheOptions.timeLimitSeconds = options.timeLimit;
                smootheStats.record(smoothe.extract(graph, smootheOptions),
                                    oracle[g]);
            }
        }

        table.addRow({family, ilpStrong.cell(), ilpMedium.cell(),
                      ilpWeak.cell(), heuristicStats.cell(),
                      heuristicPlusStats.cell(), smootheStats.cell()});
        ilpStrong.publish("table2." + family + ".ilp_strong");
        heuristicStats.publish("table2." + family + ".heuristic");
        smootheStats.publish("table2." + family + ".smoothe");
    }
    table.print(std::cout);
    std::printf("\ncell format: mean time s (#fails) | worst / geo-avg "
                "normalized cost increase vs oracle\n");

    if (sweepAssumption) {
        std::printf("\n--- assumption ablation (first graph per family, "
                    "SmoothE cost) ---\n");
        util::TablePrinter sweep({"Dataset", "independent", "correlated",
                                  "hybrid"});
        for (const std::string& family : datasets::realisticFamilies()) {
            const auto graphs =
                datasets::loadFamily(family, options.scale, options.seed);
            std::vector<std::string> row{family};
            for (const core::Assumption assumption :
                 {core::Assumption::Independent,
                  core::Assumption::Correlated, core::Assumption::Hybrid}) {
                core::SmoothEConfig config;
                config.assumption = assumption;
                config.numSeeds = 16;
                config.maxIterations = 200;
                core::SmoothEExtractor smoothe(config);
                extract::ExtractOptions runOptions;
                runOptions.seed = options.seed;
                runOptions.timeLimitSeconds = options.timeLimit;
                const auto result =
                    smoothe.extract(graphs.front().graph, runOptions);
                row.push_back(result.ok() ? util::formatFixed(result.cost, 1)
                                          : "Failed");
            }
            sweep.addRow(std::move(row));
        }
        sweep.print(std::cout);
    }
    return 0;
}
