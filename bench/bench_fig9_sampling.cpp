/**
 * @file
 * Regenerates Figure 9: optimization loss f(p) vs sampled discrete loss
 * f_b(s) over the optimization steps, on tensat and rover e-graphs. The
 * claim: the relaxed loss tracks the sampled loss closely throughout,
 * i.e. sampling effectively discretizes the relaxed solution.
 *
 * Run: ./build/bench/bench_fig9_sampling [--scale 0.1] [--iters 60]
 */

#include <cstdio>

#include "bench/common.hpp"
#include "smoothe/smoothe.hpp"

using namespace smoothe;

int
main(int argc, char** argv)
{
    const bench::BenchOptions options =
        bench::BenchOptions::parse(argc, argv, {"iters"});
    const util::Args args(argc, argv);
    const std::size_t iters =
        static_cast<std::size_t>(args.getInt("iters", 60));

    std::printf("=== Figure 9: optimization loss vs sampling loss ===\n");

    auto tensat = datasets::tensatNamedInstances(options.scale,
                                                 options.seed);
    auto rover = datasets::roverNamedInstances(options.scale, options.seed);
    std::vector<const datasets::NamedEGraph*> selected = {
        &tensat[2], &tensat[4], &rover[0], &rover[4]};

    for (const datasets::NamedEGraph* named : selected) {
        core::SmoothEConfig config;
        config.numSeeds = 16;
        config.maxIterations = iters;
        config.patience = 1000000;
        config.recordLossCurves = true;
        core::SmoothEExtractor smoothe(config);
        extract::ExtractOptions runOptions;
        runOptions.seed = options.seed;
        runOptions.timeLimitSeconds = options.timeLimit;
        const auto result = smoothe.extract(named->graph, runOptions);

        std::printf("\n--- %s/%s (final cost %.2f) ---\n",
                    named->family.c_str(), named->name.c_str(),
                    result.cost);
        std::printf("%6s %14s %14s %12s\n", "step", "f(p) relaxed",
                    "f_b(s) sampled", "NOTEARS h");
        const auto& curve = smoothe.diagnostics().lossCurve;
        const std::size_t stride = std::max<std::size_t>(1,
                                                         curve.size() / 20);
        for (std::size_t i = 0; i < curve.size(); i += stride) {
            const auto& point = curve[i];
            std::printf("%6zu %14.3f %14.3f %12.4f\n", point.iteration,
                        point.relaxedLoss, point.sampledLoss,
                        point.penalty);
        }
    }
    return 0;
}
