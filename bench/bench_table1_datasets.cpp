/**
 * @file
 * Regenerates Table 1: dataset statistics (#G, d(v), max N, max M,
 * average edge density) for all seven families, plus the paper's
 * published values for side-by-side comparison.
 *
 * Run: ./build/bench/bench_table1_datasets [--scale 0.1] [--seed 2025]
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "util/thread_pool.hpp"

using namespace smoothe;

namespace {

struct PaperRow
{
    const char* family;
    int graphs;
    double degree;
    std::size_t maxN;
    std::size_t maxM;
    double density;
};

constexpr PaperRow kPaperRows[] = {
    {"diospyros", 12, 2.5, 218933, 9584, 4.8e-3},
    {"flexc", 14, 1.8, 19830, 4892, 2.5e-4},
    {"impress", 3, 2.0, 102030, 90312, 4.7e-5},
    {"rover", 9, 5.5, 16960, 2852, 1.4e-3},
    {"tensat", 5, 2.3, 57800, 34800, 2.6e-4},
    {"set", 4, 1.0, 996738, 104632, 1.2e-2},
    {"maxsat", 6, 1.8, 3851, 3781, 4.0e-4},
    // Not in the paper's Table 1: this repo's eighth family, grown by
    // phased equality saturation over caviar-style TRS rules. The
    // reference values are the generator's scale-1 statistics.
    {"caviar", 10, 2.1, 4000, 1500, 1.5e-3},
};

} // namespace

int
main(int argc, char** argv)
{
    const bench::BenchOptions options = bench::BenchOptions::parse(argc,
                                                                   argv);
    std::printf("=== Table 1: dataset statistics (scale %.2f) ===\n",
                options.scale);
    std::printf("paper values in parentheses; sizes are scaled down by "
                "design (see DESIGN.md)\n\n");

    util::TablePrinter table({"Dataset", "#G", "d(v)", "max(N)", "max(M)",
                              "Avg. Density"});
    // One pool task per family: generation is deterministic in
    // (family, scale, seed), so the parallel sweep is bit-identical to
    // the serial one; rows are collected per slot and printed in order.
    constexpr std::size_t numFamilies =
        sizeof(kPaperRows) / sizeof(kPaperRows[0]);
    struct FamilyStats
    {
        std::size_t graphs = 0;
        std::size_t maxN = 0;
        std::size_t maxM = 0;
        double avgDegree = 0.0;
        double avgDensity = 0.0;
    };
    std::vector<FamilyStats> rows(numFamilies);
    util::ThreadPool::global().parallelFor(
        0, numFamilies, 1, [&](std::size_t f) {
            const PaperRow& paper = kPaperRows[f];
            const auto graphs = datasets::loadFamily(
                paper.family, options.scale, options.seed);
            FamilyStats& row = rows[f];
            row.graphs = graphs.size();
            double degreeSum = 0.0;
            double densitySum = 0.0;
            for (const auto& named : graphs) {
                const auto& stats = named.graph.stats();
                row.maxN = std::max(row.maxN, stats.numNodes);
                row.maxM = std::max(row.maxM, stats.numClasses);
                degreeSum += stats.avgDegree;
                densitySum += stats.density;
            }
            row.avgDegree = degreeSum / graphs.size();
            row.avgDensity = densitySum / graphs.size();
        });

    for (std::size_t f = 0; f < numFamilies; ++f) {
        const PaperRow& paper = kPaperRows[f];
        const std::size_t maxN = rows[f].maxN;
        const std::size_t maxM = rows[f].maxM;
        const double avgDegree = rows[f].avgDegree;
        const double avgDensity = rows[f].avgDensity;

        char degreeCell[64];
        std::snprintf(degreeCell, sizeof(degreeCell), "%.1f (%.1f)",
                      avgDegree, paper.degree);
        char maxNCell[64];
        std::snprintf(maxNCell, sizeof(maxNCell), "%zu (%zu)", maxN,
                      paper.maxN);
        char maxMCell[64];
        std::snprintf(maxMCell, sizeof(maxMCell), "%zu (%zu)", maxM,
                      paper.maxM);
        char densityCell[64];
        std::snprintf(densityCell, sizeof(densityCell), "%.1e (%.1e)",
                      avgDensity, paper.density);
        table.addRow({paper.family,
                      std::to_string(rows[f].graphs) + " (" +
                          std::to_string(paper.graphs) + ")",
                      degreeCell, maxNCell, maxMCell, densityCell});
    }
    table.print(std::cout);
    return 0;
}
