/**
 * @file
 * Regenerates Figure 6: performance-optimization ablation on tensat
 * e-graphs. Three configurations, matching the paper's bars:
 *   CPU baseline : scalar backend, no SCC decomposition, per-seed matexp
 *   +GPU         : vectorized backend (Section 4.1/4.2 stand-in)
 *   +MatExp      : vectorized + SCC decomposition + batched approximation
 *                  (Section 4.3)
 * Reports per-iteration optimization time and the speedup vs baseline;
 * a small arena budget on the no-SCC configurations reproduces the OOM
 * entries for larger graphs.
 *
 * Run: ./build/bench/bench_fig6_ablation [--scale 0.1]
 */

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "smoothe/smoothe.hpp"

using namespace smoothe;

namespace {

struct AblationResult
{
    bool oom = false;
    double secondsPerIter = 0.0;
};

AblationResult
run(const eg::EGraph& graph, tensor::Backend backend, bool scc,
    bool batched, std::size_t budget_bytes, std::uint64_t seed)
{
    core::SmoothEConfig config;
    config.backend = backend;
    config.sccDecomposition = scc;
    config.batchedMatexp = batched;
    config.numSeeds = 8;
    config.maxIterations = 8;
    config.patience = 1000;
    config.memoryBudgetBytes = budget_bytes;
    core::SmoothEExtractor smoothe(config);
    extract::ExtractOptions options;
    options.seed = seed;
    const auto result = smoothe.extract(graph, options);
    AblationResult out;
    out.oom = smoothe.diagnostics().outOfMemory;
    const std::size_t iters =
        std::max<std::size_t>(1, smoothe.diagnostics().iterations);
    out.secondsPerIter = result.seconds / static_cast<double>(iters);
    return out;
}

std::string
cell(const AblationResult& result, const AblationResult& baseline)
{
    if (result.oom)
        return "OOM";
    char buf[64];
    if (baseline.oom || baseline.secondsPerIter <= 0.0) {
        std::snprintf(buf, sizeof(buf), "%.3fs/it", result.secondsPerIter);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3fs/it (%.1fx)",
                      result.secondsPerIter,
                      baseline.secondsPerIter / result.secondsPerIter);
    }
    return buf;
}

} // namespace

int
main(int argc, char** argv)
{
    const bench::BenchOptions options =
        bench::BenchOptions::parse(argc, argv);
    std::printf("=== Figure 6: performance optimization ablation (tensat) "
                "===\n");
    std::printf("scale %.2f; speedups relative to the CPU baseline\n\n",
                options.scale);

    // A budget that comfortably fits the SCC-decomposed runs but not a
    // dense M x M NOTEARS matrix on the bigger graphs -> OOM rows, as in
    // the paper's figure.
    const std::size_t budget = 768ull << 20;

    util::TablePrinter table({"E-Graph", "N", "M", "CPU baseline", "+GPU",
                              "+MatExp"});
    for (const auto& named :
         datasets::tensatNamedInstances(options.scale, options.seed)) {
        const auto baseline =
            run(named.graph, tensor::Backend::Scalar, false, false, budget,
                options.seed);
        const auto gpu = run(named.graph, tensor::Backend::Vectorized,
                             false, false, budget, options.seed);
        const auto matexp = run(named.graph, tensor::Backend::Vectorized,
                                true, true, budget, options.seed);
        table.addRow({named.name, std::to_string(named.graph.numNodes()),
                      std::to_string(named.graph.numClasses()),
                      cell(baseline, baseline), cell(gpu, baseline),
                      cell(matexp, baseline)});
    }
    table.print(std::cout);
    std::printf("\nCPU baseline = scalar kernels + dense whole-graph "
                "NOTEARS; +GPU = vectorized kernels; +MatExp = SCC "
                "decomposition + batched matrix-exponential "
                "approximation\n");
    return 0;
}
