/**
 * @file
 * Regenerates Table 3: per-e-graph breakdown on the named tensat
 * (NASNet-A, NASRNN, BERT, VGG, ResNet-50) and rover (fir_5..8,
 * box_3..5, mcm_8..9) instances — cost and time per method, SmoothE over
 * several runs with max-difference error bars.
 *
 * Run: ./build/bench/bench_table3_breakdown [--scale 0.1]
 */

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "extraction/bottom_up.hpp"
#include "ilp/ilp_extractor.hpp"
#include "smoothe/smoothe.hpp"

using namespace smoothe;

namespace {

std::string
costTimeCell(const extract::ExtractionResult& result)
{
    if (!result.ok())
        return "Fails / " + util::formatSeconds(result.seconds);
    return util::formatFixed(result.cost, 1) + " / " +
           util::formatSeconds(result.seconds);
}

} // namespace

int
main(int argc, char** argv)
{
    const bench::BenchOptions options =
        bench::BenchOptions::parse(argc, argv);
    std::printf("=== Table 3: tensat and rover breakdown ===\n");
    std::printf("scale %.2f, ILP time limit %.1fs\n\n", options.scale,
                options.timeLimit);

    util::TablePrinter table({"Dataset", "E-Graph", "ILP-strong",
                              "ILP-medium", "ILP-weak", "Heuristic",
                              "Heuristic+", "SmoothE (ours)"});

    auto runRow = [&](const std::string& family,
                      const datasets::NamedEGraph& named) {
        const eg::EGraph& graph = named.graph;
        extract::ExtractOptions timed;
        timed.timeLimitSeconds = options.timeLimit;

        ilp::IlpExtractor strong(ilp::IlpPreset::Strong);
        ilp::IlpExtractor medium(ilp::IlpPreset::Medium);
        ilp::IlpExtractor weak(ilp::IlpPreset::Weak);
        extract::BottomUpExtractor heuristic;
        extract::FasterBottomUpExtractor heuristicPlus;

        const auto strongResult = strong.extract(graph, timed);
        const auto mediumResult = medium.extract(graph, timed);
        const auto weakResult = weak.extract(graph, timed);
        const auto heuristicResult = heuristic.extract(graph, {});
        const auto heuristicPlusResult = heuristicPlus.extract(graph, {});

        // SmoothE: runs with different seeds; report mean +- max diff.
        double costLo = 1e300;
        double costHi = -1e300;
        double costSum = 0.0;
        double timeSum = 0.0;
        std::size_t ok = 0;
        for (std::size_t run = 0; run < options.runs; ++run) {
            core::SmoothEConfig config;
            config.assumption = core::Assumption::Correlated;
            config.numSeeds = 64;
            config.maxIterations = 300;
            config.patience = 80;
            core::SmoothEExtractor smoothe(config);
            extract::ExtractOptions smootheOptions;
            smootheOptions.seed = options.seed + 31 * run;
            smootheOptions.timeLimitSeconds = options.timeLimit;
            const auto result = smoothe.extract(graph, smootheOptions);
            timeSum += result.seconds;
            if (result.ok()) {
                ++ok;
                costSum += result.cost;
                costLo = std::min(costLo, result.cost);
                costHi = std::max(costHi, result.cost);
            }
        }
        std::string smootheCell = "Fails";
        if (ok > 0) {
            char buf[96];
            std::snprintf(buf, sizeof(buf), "%.1f±%.1f / %.1f",
                          costSum / ok, (costHi - costLo) / 2.0,
                          timeSum / options.runs);
            smootheCell = buf;
        }

        table.addRow({family, named.name, costTimeCell(strongResult),
                      costTimeCell(mediumResult), costTimeCell(weakResult),
                      costTimeCell(heuristicResult),
                      costTimeCell(heuristicPlusResult), smootheCell});
    };

    for (const auto& named :
         datasets::tensatNamedInstances(options.scale, options.seed))
        runRow("tensat", named);
    table.addSeparator();
    for (const auto& named :
         datasets::roverNamedInstances(options.scale, options.seed))
        runRow("rover", named);

    table.print(std::cout);
    std::printf("\ncell format: cost / time-seconds; ILP rows show the "
                "incumbent at the time limit\n");
    return 0;
}
