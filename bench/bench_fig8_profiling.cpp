/**
 * @file
 * Regenerates Figure 8: run-time profiling of SmoothE per dataset —
 * shares of Loss Calculation, Gradient Descent (backward + optimizer),
 * Sampling, and Other, geometric-averaged across the e-graphs of each
 * family. The paper's observation: optimization dominates, sampling is
 * 4.8% - 21.8%.
 *
 * --op-profile drops one level below the phase shares: it enables the
 * per-op kernel profiler (obs::Profiler) for the run and prints the
 * top kernels by self time across all families.
 *
 * Run: ./build/bench/bench_fig8_profiling [--scale 0.1] [--op-profile]
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "obs/profiler.hpp"
#include "smoothe/smoothe.hpp"

using namespace smoothe;

int
main(int argc, char** argv)
{
    const util::Args args(argc, argv);
    const bool opProfile = args.getBool("op-profile", false);
    const bench::BenchOptions options =
        bench::BenchOptions::parse(argc, argv, {"op-profile"});
    if (opProfile)
        obs::Profiler::instance().enable();
    std::printf("=== Figure 8: run-time profiling of SmoothE ===\n");
    std::printf("scale %.2f; per-family geometric mean of phase shares\n\n",
                options.scale);

    util::TablePrinter table({"Dataset", "Loss Calc", "Gradient Descent",
                              "Sampling", "Other", "total (s)"});

    for (const std::string& family : datasets::allFamilies()) {
        const auto graphs =
            datasets::loadFamily(family, options.scale, options.seed);
        std::vector<double> lossShares;
        std::vector<double> gradShares;
        std::vector<double> sampleShares;
        std::vector<double> otherShares;
        double totalTime = 0.0;
        const std::size_t limit = std::min<std::size_t>(graphs.size(), 4);
        for (std::size_t g = 0; g < limit; ++g) {
            core::SmoothEConfig config;
            config.numSeeds = 16;
            config.maxIterations = 40;
            config.patience = 1000;
            core::SmoothEExtractor smoothe(config);
            extract::ExtractOptions runOptions;
            runOptions.seed = options.seed + g;
            runOptions.timeLimitSeconds = options.timeLimit;
            const auto result = smoothe.extract(graphs[g].graph,
                                                runOptions);
            const auto& profile = smoothe.diagnostics().profile;
            // "Other" is everything the named phases do not cover,
            // derived against the extraction wall time so untimed
            // bookkeeping shows up. Timer granularity can push the
            // phase sum past the wall clock; clamp the share at zero
            // (and warn, since a large excess means overlapping
            // timers) instead of printing a negative percentage.
            const double wall = std::max(result.seconds, 1e-9);
            const double phases = profile.lossSeconds +
                                  profile.gradientSeconds +
                                  profile.samplingSeconds +
                                  profile.otherSeconds;
            if (phases > wall) {
                std::fprintf(stderr,
                             "warning: %s graph %zu: summed phase "
                             "times (%.3fs) exceed wall time (%.3fs); "
                             "clamping the derived Other share at 0\n",
                             family.c_str(), g, phases, wall);
            }
            const double denom = std::max(wall, phases);
            lossShares.push_back(profile.lossSeconds / denom);
            gradShares.push_back(profile.gradientSeconds / denom);
            sampleShares.push_back(profile.samplingSeconds / denom);
            otherShares.push_back(
                std::max(0.0, wall - phases + profile.otherSeconds) /
                denom);
            totalTime += result.seconds;
        }
        table.addRow(
            {family,
             util::formatPercent(bench::geometricMean(lossShares)),
             util::formatPercent(bench::geometricMean(gradShares)),
             util::formatPercent(bench::geometricMean(sampleShares)),
             util::formatPercent(bench::geometricMean(otherShares)),
             util::formatSeconds(totalTime)});
    }
    table.print(std::cout);

    if (opProfile) {
        std::vector<obs::KernelStats> kernels =
            obs::Profiler::instance().snapshot();
        std::sort(kernels.begin(), kernels.end(),
                  [](const obs::KernelStats& a,
                     const obs::KernelStats& b) {
                      return a.selfSeconds > b.selfSeconds;
                  });
        std::printf("\nper-op kernel attribution, top %zu by self time "
                    "(full table: smoothe_report profile "
                    "BENCH_fig8_profiling.json)\n",
                    std::min<std::size_t>(kernels.size(), 12));
        util::TablePrinter opTable(
            {"kernel", "calls", "self", "GFLOP/s", "FLOP/B"});
        for (std::size_t i = 0; i < kernels.size() && i < 12; ++i) {
            const obs::KernelStats& k = kernels[i];
            const double gflops =
                k.selfSeconds > 0.0
                    ? static_cast<double>(k.flops) / k.selfSeconds / 1e9
                    : 0.0;
            opTable.addRow(
                {k.name, std::to_string(k.calls),
                 util::formatSeconds(k.selfSeconds) + "s",
                 util::formatFixed(gflops, 2),
                 util::formatFixed(k.intensity(), 2)});
        }
        opTable.print(std::cout);
    }
    return 0;
}
