/**
 * @file
 * Regenerates Figure 8: run-time profiling of SmoothE per dataset —
 * shares of Loss Calculation, Gradient Descent (backward + optimizer),
 * Sampling, and Other, geometric-averaged across the e-graphs of each
 * family. The paper's observation: optimization dominates, sampling is
 * 4.8% - 21.8%.
 *
 * Run: ./build/bench/bench_fig8_profiling [--scale 0.1]
 */

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "smoothe/smoothe.hpp"

using namespace smoothe;

int
main(int argc, char** argv)
{
    const bench::BenchOptions options =
        bench::BenchOptions::parse(argc, argv);
    std::printf("=== Figure 8: run-time profiling of SmoothE ===\n");
    std::printf("scale %.2f; per-family geometric mean of phase shares\n\n",
                options.scale);

    util::TablePrinter table({"Dataset", "Loss Calc", "Gradient Descent",
                              "Sampling", "Other", "total (s)"});

    for (const std::string& family : datasets::allFamilies()) {
        const auto graphs =
            datasets::loadFamily(family, options.scale, options.seed);
        std::vector<double> lossShares;
        std::vector<double> gradShares;
        std::vector<double> sampleShares;
        std::vector<double> otherShares;
        double totalTime = 0.0;
        const std::size_t limit = std::min<std::size_t>(graphs.size(), 4);
        for (std::size_t g = 0; g < limit; ++g) {
            core::SmoothEConfig config;
            config.numSeeds = 16;
            config.maxIterations = 40;
            config.patience = 1000;
            core::SmoothEExtractor smoothe(config);
            extract::ExtractOptions runOptions;
            runOptions.seed = options.seed + g;
            runOptions.timeLimitSeconds = options.timeLimit;
            const auto result = smoothe.extract(graphs[g].graph,
                                                runOptions);
            const auto& profile = smoothe.diagnostics().profile;
            const double total = std::max(profile.total(), 1e-9);
            lossShares.push_back(profile.lossSeconds / total);
            gradShares.push_back(profile.gradientSeconds / total);
            sampleShares.push_back(profile.samplingSeconds / total);
            otherShares.push_back(profile.otherSeconds / total);
            totalTime += result.seconds;
        }
        table.addRow(
            {family,
             util::formatPercent(bench::geometricMean(lossShares)),
             util::formatPercent(bench::geometricMean(gradShares)),
             util::formatPercent(bench::geometricMean(sampleShares)),
             util::formatPercent(bench::geometricMean(otherShares)),
             util::formatSeconds(totalTime)});
    }
    table.print(std::cout);
    return 0;
}
