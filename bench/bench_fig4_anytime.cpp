/**
 * @file
 * Regenerates Figure 4: anytime cost-vs-time curves comparing SmoothE
 * against the strongest ILP preset on selected tensat and rover
 * e-graphs. Prints the two incumbent traces as (seconds, cost) series —
 * the raw data behind the paper's plots.
 *
 * Run: ./build/bench/bench_fig4_anytime [--scale 0.1] [--time-limit 10]
 */

#include <cstdio>

#include "bench/common.hpp"
#include "ilp/ilp_extractor.hpp"
#include "smoothe/smoothe.hpp"

using namespace smoothe;

namespace {

/** Dumps one incumbent trace into the process report as a
 *  (seconds, cost) series plus an unchecked final-cost measurement. */
void
reportTrace(const std::string& key,
            const extract::ExtractionResult& result)
{
    obs::Report* report = obs::Report::current();
    if (report == nullptr)
        return;
    obs::Series& series =
        report->series("anytime." + key, {"seconds", "cost"});
    for (const auto& point : result.trace)
        series.addRow({point.seconds, point.cost});
    if (result.ok())
        bench::reportScalar("fig4." + key + ".final_cost", result.cost)
            ->checked(false);
}

void
printTrace(const char* label, const extract::ExtractionResult& result)
{
    std::printf("  %s (%s, final cost %.2f):\n", label,
                extract::toString(result.status), result.cost);
    if (result.trace.empty()) {
        std::printf("    (no incumbents recorded)\n");
        return;
    }
    for (const auto& point : result.trace)
        std::printf("    t=%-8.3f cost=%.3f\n", point.seconds, point.cost);
}

} // namespace

int
main(int argc, char** argv)
{
    const bench::BenchOptions options =
        bench::BenchOptions::parse(argc, argv);
    std::printf("=== Figure 4: anytime results (SmoothE vs strong ILP) "
                "===\n");
    std::printf("scale %.2f, cutoff %.1fs per method\n", options.scale,
                options.timeLimit);

    auto tensat = datasets::tensatNamedInstances(options.scale,
                                                 options.seed);
    auto rover = datasets::roverNamedInstances(options.scale, options.seed);
    std::vector<const datasets::NamedEGraph*> selected = {
        &tensat[0], &tensat[2], &rover[0], &rover[4]};

    for (const datasets::NamedEGraph* named : selected) {
        std::printf("\n--- %s/%s (N=%zu, M=%zu) ---\n",
                    named->family.c_str(), named->name.c_str(),
                    named->graph.numNodes(), named->graph.numClasses());

        extract::ExtractOptions traced;
        traced.timeLimitSeconds = options.timeLimit;
        traced.recordTrace = true;
        traced.seed = options.seed;

        core::SmoothEConfig config;
        config.numSeeds = 16;
        config.maxIterations = 100000; // bounded by the time limit
        config.patience = 100000;
        core::SmoothEExtractor smoothe(config);
        const auto smootheResult = smoothe.extract(named->graph, traced);
        printTrace("SmoothE", smootheResult);
        reportTrace(named->family + "." + named->name + ".smoothe",
                    smootheResult);

        ilp::IlpExtractor ilp(ilp::IlpPreset::Strong);
        const auto ilpResult = ilp.extract(named->graph, traced);
        printTrace("ILP-strong", ilpResult);
        reportTrace(named->family + "." + named->name + ".ilp_strong",
                    ilpResult);
    }
    return 0;
}
