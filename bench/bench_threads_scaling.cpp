/**
 * @file
 * Thread-scaling sweep: one SmoothE extraction on a Table-2-sized rover
 * e-graph at pool sizes 1, 2, 4, ..., --max-threads, reporting wall time,
 * speedup, and parallel efficiency per row. The extracted cost and the
 * chosen e-nodes must be bit-identical across all pool sizes (the pool's
 * determinism contract); any divergence fails the bench with exit 1.
 *
 * The time limit is disabled during the sweep: a limit that fires at a
 * different iteration per pool size would change the result for reasons
 * unrelated to determinism. Iteration count bounds the work instead.
 *
 * Run: ./build/bench/bench_threads_scaling [--scale 0.1] [--max-threads 8]
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "obs/metrics.hpp"
#include "smoothe/smoothe.hpp"
#include "util/thread_pool.hpp"

using namespace smoothe;

int
main(int argc, char** argv)
{
    const bench::BenchOptions options =
        bench::BenchOptions::parse(argc, argv, {"max-threads"});
    const util::Args args(argc, argv);
    const std::size_t maxThreads = static_cast<std::size_t>(args.getInt(
        "max-threads",
        static_cast<std::int64_t>(util::ThreadPool::hardwareThreads())));

    auto rover =
        datasets::roverNamedInstances(options.scale * 3.0, options.seed);
    const auto& instance = rover[4]; // box_3, as in the Figure 7 bench
    std::printf("=== Thread scaling on %s (N=%zu, M=%zu, hw=%zu) ===\n\n",
                instance.name.c_str(), instance.graph.numNodes(),
                instance.graph.numClasses(),
                util::ThreadPool::hardwareThreads());

    util::TablePrinter table(
        {"threads", "cost", "best time (s)", "speedup", "efficiency"});
    double baseSeconds = 0.0;
    double baseCost = 0.0;
    std::vector<std::uint32_t> baseChoice;
    bool deterministic = true;

    for (std::size_t threads = 1; threads <= maxThreads; threads *= 2) {
        util::ThreadPool::setGlobalThreads(threads);

        double best = 1e300;
        double cost = 0.0;
        std::vector<std::uint32_t> choice;
        bool ok = true;
        for (std::size_t run = 0; run < options.runs; ++run) {
            core::SmoothEConfig config;
            config.numSeeds = 16;
            config.maxIterations = options.quick ? 60 : 150;
            core::SmoothEExtractor smoothe(config);
            extract::ExtractOptions runOptions;
            runOptions.seed = options.seed;
            runOptions.timeLimitSeconds = 1e9; // see the file comment
            const auto result = smoothe.extract(instance.graph, runOptions);
            if (!result.ok()) {
                ok = false;
                break;
            }
            best = std::min(best, result.seconds);
            cost = result.cost;
            choice = result.selection.choice;
        }
        if (!ok) {
            table.addRow({std::to_string(threads), "Fails", "-", "-", "-"});
            continue;
        }

        if (threads == 1) {
            baseSeconds = best;
            baseCost = cost;
            baseChoice = choice;
        } else if (cost != baseCost || choice != baseChoice) {
            deterministic = false;
        }
        const double speedup = best > 0.0 ? baseSeconds / best : 0.0;
        // Exported via --metrics-out: one gauge per pool size.
        obs::gauge("bench.speedup.threads_" + std::to_string(threads))
            .set(speedup);
        bench::reportScalar("scaling.threads_" + std::to_string(threads) +
                                ".best_seconds",
                            best, "s")
            ->checked(false);
        bench::reportScalar("scaling.threads_" + std::to_string(threads) +
                                ".speedup",
                            speedup, "x")
            ->higherIsBetter()
            .checked(false);
        table.addRow({std::to_string(threads), util::formatFixed(cost, 1),
                      util::formatFixed(best, 3),
                      util::formatFixed(speedup, 2) + "x",
                      util::formatPercent(
                          speedup / static_cast<double>(threads))});
    }
    table.print(std::cout);

    if (!deterministic) {
        std::fprintf(stderr,
                     "FAIL: extraction result changed with pool size "
                     "(determinism contract violated)\n");
        return 1;
    }
    std::printf("\nresults bit-identical across pool sizes: yes\n");
    return 0;
}
