/**
 * @file
 * Regenerates Table 5: performance portability across GPU memory classes.
 * The A100 (80 GB) vs RTX 2080 Ti (11 GB) comparison is emulated with two
 * tensor-arena budgets 8x apart: the small budget forces an 8x smaller
 * seed batch and OOMs when even one seed does not fit — exactly the
 * coupling the paper reports.
 *
 * Run: ./build/bench/bench_table5_portability [--scale 0.1]
 */

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "smoothe/smoothe.hpp"

using namespace smoothe;

namespace {

struct DeviceClass
{
    const char* name;
    std::size_t budgetBytes;
    std::size_t seeds;
};

std::string
runCell(const eg::EGraph& graph, const DeviceClass& device,
        const bench::BenchOptions& options)
{
    core::SmoothEConfig config;
    config.numSeeds = device.seeds;
    config.maxIterations = 200;
    config.memoryBudgetBytes = device.budgetBytes;
    core::SmoothEExtractor smoothe(config);
    extract::ExtractOptions runOptions;
    runOptions.seed = options.seed;
    runOptions.timeLimitSeconds = options.timeLimit;
    const auto result = smoothe.extract(graph, runOptions);
    if (smoothe.diagnostics().outOfMemory)
        return "OOM";
    if (!result.ok())
        return "Fails";
    return util::formatFixed(result.cost, 1) + " / " +
           util::formatSeconds(result.seconds);
}

} // namespace

int
main(int argc, char** argv)
{
    const bench::BenchOptions options =
        bench::BenchOptions::parse(argc, argv);

    // Budgets sized for the scaled datasets: "A100-class" is ample;
    // "2080Ti-class" is exactly 8x smaller, like 80 GB -> 11 GB.
    const DeviceClass big{"A100-class (B=16)", 512ull << 20, 16};
    const DeviceClass small{"2080Ti-class (B=2)", 64ull << 20, 2};

    std::printf("=== Table 5: performance portability ===\n");
    std::printf("emulated memory budgets: %zu MiB vs %zu MiB (8x), seed "
                "batch 16 vs 2 (8x)\n\n",
                big.budgetBytes >> 20, small.budgetBytes >> 20);

    util::TablePrinter table({"Dataset", "E-Graph", big.name, small.name});

    for (const auto& named :
         datasets::tensatNamedInstances(options.scale, options.seed)) {
        table.addRow({"tensat", named.name,
                      runCell(named.graph, big, options),
                      runCell(named.graph, small, options)});
    }
    table.addSeparator();
    auto roverInstances =
        datasets::roverNamedInstances(options.scale, options.seed);
    for (std::size_t i = 0; i < 4 && i < roverInstances.size(); ++i) {
        table.addRow({"rover", roverInstances[i].name,
                      runCell(roverInstances[i].graph, big, options),
                      runCell(roverInstances[i].graph, small, options)});
    }
    table.print(std::cout);
    std::printf("\ncell format: cost / time-seconds, or OOM when a single "
                "seed exceeds the budget\n");
    return 0;
}
