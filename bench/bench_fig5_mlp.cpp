/**
 * @file
 * Regenerates Figure 5: non-linear (MLP) cost models across the five
 * realistic datasets. For each family's first graph: train a per-graph
 * MLP correction term on synthetic data (Section 5.5), then extract with
 * SmoothE, the genetic algorithm (3 runs, max difference), and ILP* (the
 * linear-oracle solution re-scored under the full model). Costs are
 * normalized to SmoothE = 1.0, matching the figure.
 *
 * Run: ./build/bench/bench_fig5_mlp [--scale 0.1]
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench/common.hpp"
#include "costmodel/cost_model.hpp"
#include "extraction/genetic.hpp"
#include "ilp/ilp_extractor.hpp"
#include "smoothe/smoothe.hpp"

using namespace smoothe;

int
main(int argc, char** argv)
{
    const bench::BenchOptions options =
        bench::BenchOptions::parse(argc, argv);
    std::printf("=== Figure 5: MLP (non-linear) cost models ===\n");
    std::printf("scale %.2f; costs normalized to SmoothE\n\n",
                options.scale);

    util::TablePrinter table({"Dataset", "SmoothE", "Genetic (±max diff)",
                              "ILP* (linear oracle)"});

    for (const std::string& family : datasets::realisticFamilies()) {
        const auto graphs =
            datasets::loadFamily(family, options.scale, options.seed);
        const eg::EGraph& graph = graphs.front().graph;

        // Per-graph model: linear base + trained MLP correction.
        util::Rng rng(options.seed + 55);
        auto linear = std::make_shared<cost::LinearCost>(graph);
        auto mlp =
            std::make_shared<cost::MlpCost>(graph.numNodes(), rng);
        util::Rng trainRng(options.seed + 56);
        mlp->trainSynthetic(graph, 32, 40, trainRng);
        const cost::CompositeCost model(linear, mlp, 1.0f);

        // SmoothE on the true differentiable objective.
        core::SmoothEConfig config;
        config.numSeeds = 64;
        config.maxIterations = 400;
        config.patience = 120;
        core::SmoothEExtractor smoothe(config);
        extract::ExtractOptions smootheOptions;
        smootheOptions.seed = options.seed;
        smootheOptions.timeLimitSeconds = options.timeLimit;
        const auto smootheResult =
            smoothe.extractWithCost(graph, model, smootheOptions);
        if (!smootheResult.ok()) {
            table.addRow({family, "Fails", "-", "-"});
            continue;
        }
        const double base = smootheResult.cost;

        // Genetic: multiple runs, report mean and max difference.
        double lo = 1e300;
        double hi = -1e300;
        double sum = 0.0;
        for (std::size_t run = 0; run < options.runs; ++run) {
            extract::GeneticExtractor genetic;
            extract::ExtractOptions geneticOptions;
            geneticOptions.seed = options.seed + 13 * run;
            geneticOptions.timeLimitSeconds = options.timeLimit;
            const auto result = genetic.extractWithCost(
                graph,
                [&](const eg::EGraph& g, const extract::Selection& sel) {
                    return model.discrete(sel.toNodeIndicator(g));
                },
                geneticOptions);
            const double cost = result.ok() ? result.cost : 1e300;
            sum += cost;
            lo = std::min(lo, cost);
            hi = std::max(hi, cost);
        }
        const double geneticMean = sum / options.runs;

        // ILP*: optimal under the linear part only, re-scored.
        ilp::IlpExtractor ilp(ilp::IlpPreset::Strong);
        extract::ExtractOptions ilpOptions;
        ilpOptions.timeLimitSeconds = options.timeLimit;
        const auto oracle = ilp.extract(graph, ilpOptions);
        const double ilpStar =
            oracle.ok()
                ? model.discrete(oracle.selection.toNodeIndicator(graph))
                : 1e300;

        // Normalize to SmoothE. Costs can be negative (MLP models
        // "savings"), so normalize by distance above SmoothE's value.
        auto normalized = [&](double cost) {
            if (cost > 1e299)
                return std::string("Fails");
            const double scale =
                std::max(1.0, std::fabs(base));
            return util::formatFixed(1.0 + (cost - base) / scale, 3);
        };
        char geneticCell[64];
        std::snprintf(geneticCell, sizeof(geneticCell), "%s ±%.3f",
                      normalized(geneticMean).c_str(),
                      (hi - lo) / (2.0 * std::max(1.0, std::fabs(base))));
        table.addRow({family, "1.000", geneticCell, normalized(ilpStar)});
    }
    table.print(std::cout);
    std::printf("\nvalues > 1.0 mean worse than SmoothE by that fraction "
                "of |SmoothE cost|\n");
    return 0;
}
