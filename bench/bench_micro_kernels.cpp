/**
 * @file
 * google-benchmark micro-benchmarks for the tensor/autodiff kernels that
 * dominate SmoothE's runtime: batched SpMV, segment softmax, segment
 * product-complement, and the matrix exponential — each on both backends
 * where applicable. Not a paper figure; used to sanity-check the
 * Figure 6 ablation at the kernel level.
 */

#include <benchmark/benchmark.h>

#include "autodiff/matexp.hpp"
#include "autodiff/program.hpp"
#include "autodiff/tape.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace st = smoothe::tensor;
namespace ad = smoothe::ad;

namespace {

st::CsrMatrix
randomCsr(std::size_t rows, std::size_t cols, std::size_t nnz_per_row,
          smoothe::util::Rng& rng)
{
    st::CsrMatrix m;
    m.numRows = rows;
    m.numCols = cols;
    m.rowOffsets.push_back(0);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t k = 0; k < nnz_per_row; ++k) {
            m.colIndices.push_back(
                static_cast<std::uint32_t>(rng.uniformIndex(cols)));
            m.values.push_back(rng.uniformFloat());
        }
        m.rowOffsets.push_back(
            static_cast<std::uint32_t>(m.colIndices.size()));
    }
    return m;
}

st::SegmentIndex
uniformSegments(std::size_t items, std::size_t segments)
{
    std::vector<std::uint32_t> assignment(items);
    for (std::size_t i = 0; i < items; ++i)
        assignment[i] = static_cast<std::uint32_t>(i % segments);
    return st::SegmentIndex::fromAssignment(assignment, segments);
}

void
BM_SpmvScalar(benchmark::State& state)
{
    smoothe::util::Rng rng(1);
    const auto m = randomCsr(2048, 2048, 4, rng);
    st::Tensor x(8, 2048, 0.5f);
    st::Tensor out(8, 2048);
    for (auto _ : state) {
        st::spmv(m, x, out, st::Backend::Scalar);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_SpmvScalar);

void
BM_SpmvVectorized(benchmark::State& state)
{
    smoothe::util::Rng rng(1);
    const auto m = randomCsr(2048, 2048, 4, rng);
    st::Tensor x(8, 2048, 0.5f);
    st::Tensor out(8, 2048);
    for (auto _ : state) {
        st::spmv(m, x, out, st::Backend::Vectorized);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_SpmvVectorized);

void
BM_SegmentSoftmax(benchmark::State& state)
{
    const auto backend = state.range(0) == 0 ? st::Backend::Scalar
                                             : st::Backend::Vectorized;
    const auto segs = uniformSegments(8192, 2048);
    smoothe::util::Rng rng(2);
    ad::Tensor theta(8, 8192);
    for (std::size_t i = 0; i < theta.size(); ++i)
        theta.data()[i] = rng.uniformFloat();
    for (auto _ : state) {
        ad::Tape tape(backend);
        const auto cp = tape.segmentSoftmax(tape.constant(theta), &segs);
        benchmark::DoNotOptimize(tape.value(cp).data());
    }
}
BENCHMARK(BM_SegmentSoftmax)->Arg(0)->Arg(1);

void
BM_SegmentProductComplement(benchmark::State& state)
{
    const auto segs = uniformSegments(8192, 2048);
    smoothe::util::Rng rng(3);
    ad::Tensor p(8, 8192);
    for (std::size_t i = 0; i < p.size(); ++i)
        p.data()[i] = 0.3f * rng.uniformFloat();
    for (auto _ : state) {
        ad::Tape tape;
        const auto out =
            tape.segmentProductComplement(tape.constant(p), &segs);
        benchmark::DoNotOptimize(tape.value(out).data());
    }
}
BENCHMARK(BM_SegmentProductComplement);

void
BM_Expm(benchmark::State& state)
{
    const std::size_t d = static_cast<std::size_t>(state.range(0));
    smoothe::util::Rng rng(4);
    std::vector<float> a(d * d);
    for (auto& v : a)
        v = 0.2f * rng.uniformFloat();
    std::vector<float> out(d * d);
    for (auto _ : state) {
        ad::expm(a.data(), d, out.data());
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_Expm)->Arg(8)->Arg(32)->Arg(128);

void
BM_BackwardPass(benchmark::State& state)
{
    // One SmoothE-shaped forward+backward at medium size.
    const std::size_t n = 4096;
    const std::size_t m = 1024;
    const auto members = uniformSegments(n, m);
    const auto parents = uniformSegments(n, m);
    std::vector<std::uint32_t> node2class(n);
    for (std::size_t i = 0; i < n; ++i)
        node2class[i] = static_cast<std::uint32_t>(i % m);
    smoothe::util::Rng rng(5);
    ad::Param theta{ad::Tensor(8, n)};
    for (std::size_t i = 0; i < theta.value.size(); ++i)
        theta.value.data()[i] = rng.uniformFloat();
    std::vector<float> u(n, 1.0f);

    for (auto _ : state) {
        theta.zeroGrad();
        ad::Tape tape;
        const auto cp = tape.segmentSoftmax(tape.leaf(&theta), &members);
        ad::Tensor q0(8, m, 0.1f);
        auto q = tape.constant(q0);
        for (int t = 0; t < 4; ++t) {
            const auto p = tape.mul(cp, tape.gatherCols(q, &node2class));
            const auto prod = tape.segmentProductComplement(p, &parents);
            q = tape.addScalar(tape.scale(prod, -1.0f), 1.0f);
        }
        const auto p = tape.mul(cp, tape.gatherCols(q, &node2class));
        const auto loss = tape.sumAll(tape.dotRowsConst(p, u));
        tape.backward(loss);
        benchmark::DoNotOptimize(theta.grad.data());
    }
}
BENCHMARK(BM_BackwardPass);

// --- Plan vs eager: one full forward+backward iteration ------------------
//
// The same medium SmoothE-shaped graph (rover-like class/node counts),
// once rebuilt on a fresh tape every iteration (the pre-compile
// behaviour) and once replayed through the compiled ad::Program. The
// arena peak of each mode is reported as a counter so the buffer-plan
// savings are visible next to the wall-time ratio.

struct IterationFixture
{
    static constexpr std::size_t kNodes = 4096;
    static constexpr std::size_t kClasses = 1024;
    static constexpr std::size_t kBatch = 8;

    st::SegmentIndex members = uniformSegments(kNodes, kClasses);
    st::SegmentIndex parents = uniformSegments(kNodes, kClasses);
    std::vector<std::uint32_t> node2class;
    std::vector<float> u;
    ad::Param theta;

    IterationFixture()
        : node2class(kNodes), u(kNodes, 1.0f),
          theta{ad::Tensor(kBatch, kNodes)}
    {
        for (std::size_t i = 0; i < kNodes; ++i)
            node2class[i] = static_cast<std::uint32_t>(i % kClasses);
        smoothe::util::Rng rng(5);
        for (std::size_t i = 0; i < theta.value.size(); ++i)
            theta.value.data()[i] = rng.uniformFloat();
    }

    ad::VarId
    build(ad::Tape& tape)
    {
        const auto cp = tape.segmentSoftmax(tape.leaf(&theta), &members);
        ad::Tensor q0(kBatch, kClasses, 0.1f);
        auto q = tape.constant(std::move(q0));
        for (int t = 0; t < 4; ++t) {
            const auto p = tape.mul(cp, tape.gatherCols(q, &node2class));
            const auto prod = tape.segmentProductComplement(p, &parents);
            q = tape.addScalar(tape.scale(prod, -1.0f), 1.0f);
        }
        const auto p = tape.mul(cp, tape.gatherCols(q, &node2class));
        return tape.sumAll(tape.dotRowsConst(p, u));
    }
};

void
BM_IterationEager(benchmark::State& state)
{
    IterationFixture fx;
    st::Arena arena;
    for (auto _ : state) {
        fx.theta.zeroGrad();
        ad::Tape tape(st::Backend::Vectorized, &arena);
        const auto loss = fx.build(tape);
        tape.backward(loss);
        benchmark::DoNotOptimize(fx.theta.grad.data());
    }
    state.counters["arena_peak_bytes"] =
        static_cast<double>(arena.peak());
}
BENCHMARK(BM_IterationEager);

void
BM_IterationCompiled(benchmark::State& state)
{
    IterationFixture fx;
    st::Arena arena;
    ad::Tape recorder(st::Backend::Vectorized, &arena);
    const auto loss = fx.build(recorder);
    ad::Program program(std::move(recorder), loss);
    for (auto _ : state) {
        fx.theta.zeroGrad();
        program.forward();
        program.backward();
        benchmark::DoNotOptimize(fx.theta.grad.data());
    }
    state.counters["arena_peak_bytes"] =
        static_cast<double>(arena.peak());
    state.counters["planned_bytes"] =
        static_cast<double>(program.stats().plannedBytes);
    state.counters["reuse_ratio"] = program.stats().reuseRatio();
}
BENCHMARK(BM_IterationCompiled);

} // namespace

BENCHMARK_MAIN();
