/**
 * @file
 * Micro-benchmarks for the tensor/autodiff kernels that dominate
 * SmoothE's runtime: batched SpMV, segment softmax, segment
 * product-complement, the matrix exponential, a full backward pass, and
 * one complete optimizer iteration on both the eager-tape and
 * compiled-program paths. Runs on the shared bench harness
 * (--repeat/--warmup, obs::Report output) instead of a paper figure;
 * the deterministic arena/plan measurements gate the CI perf job.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "autodiff/matexp.hpp"
#include "autodiff/program.hpp"
#include "autodiff/tape.hpp"
#include "bench/common.hpp"
#include "obs/profiler.hpp"
#include "tensor/kernels.hpp"
#include "tensor/simd.hpp"
#include "tensor/sparse.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace st = smoothe::tensor;
namespace ad = smoothe::ad;
using namespace smoothe;

namespace {

st::CsrMatrix
randomCsr(std::size_t rows, std::size_t cols, std::size_t nnz_per_row,
          smoothe::util::Rng& rng)
{
    st::CsrMatrix m;
    m.numRows = rows;
    m.numCols = cols;
    m.rowOffsets.push_back(0);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t k = 0; k < nnz_per_row; ++k) {
            m.colIndices.push_back(
                static_cast<std::uint32_t>(rng.uniformIndex(cols)));
            m.values.push_back(rng.uniformFloat());
        }
        m.rowOffsets.push_back(
            static_cast<std::uint32_t>(m.colIndices.size()));
    }
    return m;
}

st::SegmentIndex
uniformSegments(std::size_t items, std::size_t segments)
{
    std::vector<std::uint32_t> assignment(items);
    for (std::size_t i = 0; i < items; ++i)
        assignment[i] = static_cast<std::uint32_t>(i % segments);
    return st::SegmentIndex::fromAssignment(assignment, segments);
}

/** Problem sizes; --quick halves everything so CI stays fast. */
struct Sizes
{
    std::size_t spmvDim;
    std::size_t items;
    std::size_t segments;
    std::size_t nodes;
    std::size_t classes;
    std::vector<std::size_t> expmDims;

    explicit Sizes(bool quick)
        : spmvDim(quick ? 1024 : 2048), items(quick ? 4096 : 8192),
          segments(quick ? 1024 : 2048), nodes(quick ? 2048 : 4096),
          classes(quick ? 512 : 1024),
          expmDims(quick ? std::vector<std::size_t>{8, 32, 64}
                         : std::vector<std::size_t>{8, 32, 128})
    {}
};

/** The medium SmoothE-shaped iteration graph shared by the
 *  eager/compiled comparison and the backward-pass kernel. */
struct IterationFixture
{
    static constexpr std::size_t kBatch = 8;

    std::size_t nodes;
    std::size_t classes;
    st::SegmentIndex members;
    st::SegmentIndex parents;
    std::vector<std::uint32_t> node2class;
    std::vector<float> u;
    ad::Param theta;

    explicit IterationFixture(const Sizes& sizes)
        : nodes(sizes.nodes), classes(sizes.classes),
          members(uniformSegments(sizes.nodes, sizes.classes)),
          parents(uniformSegments(sizes.nodes, sizes.classes)),
          node2class(sizes.nodes), u(sizes.nodes, 1.0f),
          theta{ad::Tensor(kBatch, sizes.nodes)}
    {
        for (std::size_t i = 0; i < nodes; ++i)
            node2class[i] = static_cast<std::uint32_t>(i % classes);
        smoothe::util::Rng rng(5);
        for (std::size_t i = 0; i < theta.value.size(); ++i)
            theta.value.data()[i] = rng.uniformFloat();
    }

    ad::VarId
    build(ad::Tape& tape)
    {
        const auto cp = tape.segmentSoftmax(tape.leaf(&theta), &members);
        ad::Tensor q0(kBatch, classes, 0.1f);
        auto q = tape.constant(std::move(q0));
        for (int t = 0; t < 4; ++t) {
            const auto p = tape.mul(cp, tape.gatherCols(q, &node2class));
            const auto prod = tape.segmentProductComplement(p, &parents);
            q = tape.addScalar(tape.scale(prod, -1.0f), 1.0f);
        }
        const auto p = tape.mul(cp, tape.gatherCols(q, &node2class));
        return tape.sumAll(tape.dotRowsConst(p, u));
    }
};

volatile float g_sink = 0.0f; ///< defeats dead-code elimination

void
sink(const float* data)
{
    g_sink = data[0];
}

} // namespace

int
main(int argc, char** argv)
{
    auto options = bench::BenchOptions::parse(argc, argv);
    const Sizes sizes(options.quick);
    obs::Report& report = *obs::Report::current();
    report.setRun("family", "micro_kernels");
    report.setRun("spmvDim", sizes.spmvDim);
    report.setRun("nodes", sizes.nodes);
    report.setRun("classes", sizes.classes);

    util::TablePrinter table({"kernel", "mean", "stddev", "min", "max"});
    const auto row = [&table](const std::string& name,
                              const bench::RepeatStats& stats) {
        table.addRow({name, util::formatSeconds(stats.mean) + "s",
                      util::formatSeconds(stats.stddev) + "s",
                      util::formatSeconds(stats.min) + "s",
                      util::formatSeconds(stats.max) + "s"});
    };
    const auto timeKernel = [&](const std::string& name, auto&& fn) {
        const auto stats = bench::repeatMeasure(name, options, fn);
        if (obs::Measurement* m = bench::findMeasurement(name))
            m->checked(false);
        row(name, stats);
        return stats;
    };

    // --- SpMV, both backends ------------------------------------------
    {
        smoothe::util::Rng rng(1);
        const auto m = randomCsr(sizes.spmvDim, sizes.spmvDim, 4, rng);
        st::Tensor x(8, sizes.spmvDim, 0.5f);
        st::Tensor out(8, sizes.spmvDim);
        timeKernel("spmv.scalar", [&] {
            for (int i = 0; i < 8; ++i)
                st::spmv(m, x, out, st::Backend::Scalar);
            sink(out.data());
        });
        timeKernel("spmv.vectorized", [&] {
            for (int i = 0; i < 8; ++i)
                st::spmv(m, x, out, st::Backend::Vectorized);
            sink(out.data());
        });
    }

    // --- Segment softmax, both backends -------------------------------
    {
        const auto segs = uniformSegments(sizes.items, sizes.segments);
        smoothe::util::Rng rng(2);
        ad::Tensor theta(8, sizes.items);
        for (std::size_t i = 0; i < theta.size(); ++i)
            theta.data()[i] = rng.uniformFloat();
        for (const auto backend :
             {st::Backend::Scalar, st::Backend::Vectorized}) {
            const std::string name =
                backend == st::Backend::Scalar
                    ? "segment_softmax.scalar"
                    : "segment_softmax.vectorized";
            timeKernel(name, [&] {
                ad::Tape tape(backend);
                const auto cp =
                    tape.segmentSoftmax(tape.constant(theta), &segs);
                sink(tape.value(cp).data());
            });
        }
    }

    // --- Segment product-complement -----------------------------------
    {
        const auto segs = uniformSegments(sizes.items, sizes.segments);
        smoothe::util::Rng rng(3);
        ad::Tensor p(8, sizes.items);
        for (std::size_t i = 0; i < p.size(); ++i)
            p.data()[i] = 0.3f * rng.uniformFloat();
        timeKernel("segment_product_complement", [&] {
            ad::Tape tape;
            const auto out =
                tape.segmentProductComplement(tape.constant(p), &segs);
            sink(tape.value(out).data());
        });
    }

    // --- Matrix exponential across sizes ------------------------------
    for (const std::size_t d : sizes.expmDims) {
        smoothe::util::Rng rng(4);
        std::vector<float> a(d * d);
        for (auto& v : a)
            v = 0.2f * rng.uniformFloat();
        std::vector<float> out(d * d);
        timeKernel("expm.d" + std::to_string(d), [&] {
            for (int i = 0; i < 4; ++i)
                ad::expm(a.data(), d, out.data());
            sink(out.data());
        });
    }

    // --- Scalar vs AVX2 SIMD levels (same Vectorized backend) ---------
    //
    // Pins simd::setLevel around otherwise identical timing loops so the
    // speedups isolate the AVX2 kernels from backend and threading
    // effects. Wall times and per-kernel speedups are unchecked (they
    // depend on the runner); the gated quantity is the count of kernels
    // meeting the 1.5x floor, whose committed baseline entry encodes the
    // "at least 2 of 3" acceptance bar (mean 2, near-zero tolerance,
    // higher-is-better). Hosts without AVX2 skip the section entirely;
    // the absent measurements make the CI gate skip these entries
    // instead of failing.
    report.setRun("simdDetected",
                  st::simd::levelName(st::simd::detectedLevel()));
    if (st::simd::detectedLevel() == st::simd::Level::Avx2) {
        const st::simd::Level saved = st::simd::activeLevel();
        const auto timeAtLevel = [&](const std::string& name,
                                     st::simd::Level level, auto&& fn) {
            st::simd::setLevel(level);
            return timeKernel(name, fn);
        };

        smoothe::util::Rng rng(6);
        const auto m = randomCsr(sizes.spmvDim, sizes.spmvDim, 4, rng);
        st::Tensor x(8, sizes.spmvDim, 0.5f);
        st::Tensor spmvOut(8, sizes.spmvDim);
        const auto spmvRun = [&] {
            for (int i = 0; i < 8; ++i)
                st::spmv(m, x, spmvOut, st::Backend::Vectorized);
            sink(spmvOut.data());
        };
        const auto spmvScalar = timeAtLevel(
            "simd.spmv.scalar", st::simd::Level::Scalar, spmvRun);
        const auto spmvAvx2 =
            timeAtLevel("simd.spmv.avx2", st::simd::Level::Avx2, spmvRun);

        const auto segs = uniformSegments(sizes.items, sizes.segments);
        st::Tensor theta(8, sizes.items);
        for (std::size_t i = 0; i < theta.size(); ++i)
            theta.data()[i] = rng.uniformFloat();
        st::Tensor softmaxOut(8, sizes.items);
        const auto softmaxRun = [&] {
            st::segmentSoftmaxInto(theta, segs, softmaxOut,
                                   st::Backend::Vectorized);
            sink(softmaxOut.data());
        };
        const auto softmaxScalar = timeAtLevel(
            "simd.softmax.scalar", st::simd::Level::Scalar, softmaxRun);
        const auto softmaxAvx2 = timeAtLevel(
            "simd.softmax.avx2", st::simd::Level::Avx2, softmaxRun);

        // A four-stage chain the fusion pass would emit for a run of
        // scale / add-scalar / mul-const / add-const ops.
        std::vector<st::ElemStage> stages(4);
        stages[0].kind = st::ElemStageKind::Scale;
        stages[0].alpha = 1.0003f;
        stages[1].kind = st::ElemStageKind::AddScalar;
        stages[1].alpha = 0.25f;
        stages[2].kind = st::ElemStageKind::MulConst;
        stages[2].c = st::Tensor(1, sizes.items); // broadcast row
        for (std::size_t i = 0; i < stages[2].c.size(); ++i)
            stages[2].c.data()[i] = rng.uniformFloat();
        stages[3].kind = st::ElemStageKind::AddConst;
        stages[3].c = st::Tensor(8, sizes.items);
        for (std::size_t i = 0; i < stages[3].c.size(); ++i)
            stages[3].c.data()[i] = rng.uniformFloat();
        st::Tensor chainOut(8, sizes.items);
        const auto chainRun = [&] {
            for (int i = 0; i < 8; ++i)
                st::elemChainInto(theta, stages, chainOut,
                                  st::Backend::Vectorized);
            sink(chainOut.data());
        };
        const auto chainScalar = timeAtLevel(
            "simd.elem_chain.scalar", st::simd::Level::Scalar, chainRun);
        const auto chainAvx2 = timeAtLevel(
            "simd.elem_chain.avx2", st::simd::Level::Avx2, chainRun);
        st::simd::setLevel(saved);

        // min-of-repeats is the estimator least sensitive to scheduler
        // noise, so the speedups use it rather than the means.
        const auto speedupOf = [](const bench::RepeatStats& scalar,
                                  const bench::RepeatStats& avx2) {
            return avx2.min > 0.0 ? scalar.min / avx2.min : 0.0;
        };
        const double spmvX = speedupOf(spmvScalar, spmvAvx2);
        const double softmaxX = speedupOf(softmaxScalar, softmaxAvx2);
        const double chainX = speedupOf(chainScalar, chainAvx2);
        bench::reportScalar("simd.spmv.speedup", spmvX, "x")
            ->higherIsBetter()
            .checked(false);
        bench::reportScalar("simd.softmax.speedup", softmaxX, "x")
            ->higherIsBetter()
            .checked(false);
        bench::reportScalar("simd.elem_chain.speedup", chainX, "x")
            ->higherIsBetter()
            .checked(false);
        const double floorMet = (spmvX >= 1.5 ? 1.0 : 0.0) +
                                (softmaxX >= 1.5 ? 1.0 : 0.0) +
                                (chainX >= 1.5 ? 1.0 : 0.0);
        bench::reportScalar("simd.speedup_floor_met", floorMet)
            ->higherIsBetter()
            .tolerancePct(0.001);
        table.addSeparator();
        table.addRow({"simd spmv speedup (avx2/scalar)",
                      util::formatFixed(spmvX, 2) + "x", "", "", ""});
        table.addRow({"simd softmax speedup",
                      util::formatFixed(softmaxX, 2) + "x", "", "", ""});
        table.addRow({"simd elem-chain speedup",
                      util::formatFixed(chainX, 2) + "x", "", "", ""});
        table.addRow({"simd kernels meeting 1.5x floor",
                      util::formatFixed(floorMet, 0) + "/3", "", "", ""});
    }

    // --- SIMD dispatch-cost budget ------------------------------------
    //
    // Kernels pay one relaxed atomic load per call to pick their
    // variant (the check is hoisted out of the parallel loops). Time it
    // directly; the committed baseline entry encodes the 5 ns budget
    // (mean 5.0, near-zero tolerance), so the dispatch can never
    // silently grow into something visible at kernel-call granularity.
    {
        constexpr int kCalls = 1 << 20;
        const auto probe = timeKernel("simd.dispatch_probe", [&] {
            unsigned hits = 0;
            for (int i = 0; i < kCalls; ++i)
                hits += st::simd::avx2Active() ? 1u : 0u;
            g_sink = static_cast<float>(hits);
        });
        const double nsPerCall =
            probe.min / static_cast<double>(kCalls) * 1e9;
        bench::reportScalar("simd.dispatch_ns_per_call", nsPerCall, "ns")
            ->tolerancePct(0.001);
        table.addRow({"simd dispatch cost",
                      util::formatFixed(nsPerCall, 2) + "ns/call", "", "",
                      ""});
    }

    // --- Full backward pass on a fresh tape ---------------------------
    {
        IterationFixture fx(sizes);
        timeKernel("backward_pass", [&] {
            fx.theta.zeroGrad();
            ad::Tape tape;
            const auto loss = fx.build(tape);
            tape.backward(loss);
            sink(fx.theta.grad.data());
        });
    }

    // --- One optimizer iteration: eager tape vs compiled replay -------
    //
    // Wall times are recorded unchecked (runner-speed dependent); the
    // eager/compiled speedup is machine-relative and gated loosely, and
    // the arena/buffer-plan byte counts are fully deterministic for a
    // given --quick setting, so the CI perf gate checks them tightly.
    {
        IterationFixture fx(sizes);
        st::Arena eagerArena;
        const auto eager = timeKernel("iteration.eager", [&] {
            fx.theta.zeroGrad();
            ad::Tape tape(st::Backend::Vectorized, &eagerArena);
            const auto loss = fx.build(tape);
            tape.backward(loss);
            sink(fx.theta.grad.data());
        });

        st::Arena compiledArena;
        ad::Tape recorder(st::Backend::Vectorized, &compiledArena);
        const auto loss = fx.build(recorder);
        ad::Program program(std::move(recorder), loss);
        const auto compiled = timeKernel("iteration.compiled", [&] {
            fx.theta.zeroGrad();
            program.forward();
            program.backward();
            sink(fx.theta.grad.data());
        });

        const double speedup =
            compiled.mean > 0.0 ? eager.mean / compiled.mean : 0.0;
        bench::reportScalar("iteration.speedup", speedup, "x")
            ->higherIsBetter()
            .tolerancePct(40.0);
        bench::reportScalar("iteration.eager_arena_peak_bytes",
                            static_cast<double>(eagerArena.peak()), "B")
            ->tolerancePct(5.0);
        bench::reportScalar("iteration.compiled_arena_peak_bytes",
                            static_cast<double>(compiledArena.peak()), "B")
            ->tolerancePct(5.0);
        bench::reportScalar("iteration.planned_bytes",
                            static_cast<double>(
                                program.stats().plannedBytes),
                            "B")
            ->tolerancePct(5.0);
        bench::reportScalar("iteration.reuse_ratio",
                            program.stats().reuseRatio())
            ->higherIsBetter()
            .tolerancePct(10.0);
        table.addSeparator();
        table.addRow({"iteration speedup (eager/compiled)",
                      util::formatFixed(speedup, 2) + "x", "", "", ""});

        // --- disabled-profiler overhead gate ---------------------------
        // forward()/backward() differ from the Bare pair by one relaxed
        // atomic load and branch per call; CI gates that dispatch cost
        // below 1%. The profiler is forced off for this window (a
        // --profile flag may have enabled it) so the dispatching pair
        // never takes the instrumented path, then prior enablement is
        // restored. Both wall times are unchecked; the gated quantity
        // is their relative difference, from min-of-repeats (the
        // estimator least sensitive to scheduler noise).
        {
            const bool wasEnabled = obs::profilerEnabled();
            const std::size_t stride = obs::Profiler::instance().stride();
            obs::Profiler::instance().disable();
            const auto bare = timeKernel("profiler.replay_bare", [&] {
                fx.theta.zeroGrad();
                for (int i = 0; i < 4; ++i) {
                    program.forwardBare();
                    program.backwardBare();
                }
                sink(fx.theta.grad.data());
            });
            const auto dispatch =
                timeKernel("profiler.dispatch_disabled", [&] {
                    fx.theta.zeroGrad();
                    for (int i = 0; i < 4; ++i) {
                        program.forward();
                        program.backward();
                    }
                    sink(fx.theta.grad.data());
                });
            const double overheadPct =
                bare.min > 0.0
                    ? std::max(0.0, 100.0 * (dispatch.min - bare.min) /
                                        bare.min)
                    : 0.0;
            // The committed baseline entry for this measurement encodes
            // the 1% budget itself (mean 1.0, near-zero tolerancePct),
            // so any candidate above 1.0 fails the CI perf gate; see
            // bench/baselines/micro_kernels.json.
            bench::reportScalar("profiler.disabled_overhead_pct",
                                overheadPct, "%")
                ->tolerancePct(0.001);
            table.addRow({"profiler disabled overhead",
                          util::formatFixed(overheadPct, 2) + "%", "",
                          "", ""});
            if (wasEnabled)
                obs::Profiler::instance().enable(stride);
        }

        // --- profiled demo replays -------------------------------------
        // A short instrumented window (stride 1) so the report's
        // profile section and any --profile-out flamegraph carry
        // per-kernel attribution even when the bench runs without
        // --profile; prior enablement is restored afterwards. On AVX2
        // hosts a second program is compiled and replayed at the other
        // SIMD level (the "@avx2" kernel-slot suffix is resolved when a
        // Program is compiled), so `smoothe_report profile` shows
        // scalar and AVX2 variants of each kernel side by side.
        {
            const bool wasEnabled = obs::profilerEnabled();
            if (!wasEnabled)
                obs::Profiler::instance().enable(1);
            for (int i = 0; i < 5; ++i) {
                fx.theta.zeroGrad();
                program.forward();
                program.backward();
                sink(fx.theta.grad.data());
            }
            if (st::simd::detectedLevel() == st::simd::Level::Avx2) {
                const st::simd::Level saved = st::simd::activeLevel();
                st::simd::setLevel(saved == st::simd::Level::Avx2
                                       ? st::simd::Level::Scalar
                                       : st::simd::Level::Avx2);
                st::Arena otherArena;
                ad::Tape other(st::Backend::Vectorized, &otherArena);
                const auto otherLoss = fx.build(other);
                ad::Program otherProgram(std::move(other), otherLoss);
                for (int i = 0; i < 5; ++i) {
                    fx.theta.zeroGrad();
                    otherProgram.forward();
                    otherProgram.backward();
                    sink(fx.theta.grad.data());
                }
                st::simd::setLevel(saved);
            }
            if (!wasEnabled)
                obs::Profiler::instance().disable();
        }
    }

    std::printf("bench_micro_kernels (quick=%d repeat=%zu warmup=%zu)\n",
                options.quick ? 1 : 0, options.repeat, options.warmup);
    table.print(std::cout);
    obs::flushCliTelemetry();
    return 0;
}
