/**
 * @file
 * Shared helpers for the benchmark harness binaries (one per paper table
 * or figure). Each binary accepts --scale, --seed, --time-limit plus the
 * repeat/telemetry surface below, prints paper-style rows, and emits a
 * structured obs::Report (--report-out FILE, defaulting to
 * BENCH_<name>.json in the working directory) conforming to the
 * versioned "smoothe.report" schema; see DESIGN.md's per-experiment
 * index and "Telemetry pipeline".
 */

#ifndef SMOOTHE_BENCH_COMMON_HPP
#define SMOOTHE_BENCH_COMMON_HPP

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <vector>

#include "datasets/registry.hpp"
#include "extraction/extractor.hpp"
#include "obs/cli.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace smoothe::bench {

/** Common CLI knobs for all harness binaries. */
struct BenchOptions
{
    double scale = 0.1;        ///< dataset size multiplier
    std::uint64_t seed = 2025; ///< base RNG seed
    double timeLimit = 5.0;    ///< per-extraction budget (seconds)
    std::size_t runs = 3;      ///< repeated stochastic runs (max-diff)
    std::size_t maxGraphs = 4; ///< per-family cap for sweep benches
    std::size_t repeat = 3;    ///< timed repeats per measurement
    std::size_t warmup = 1;    ///< untimed warmup runs per measurement
    bool quick = false;        ///< shrink everything for smoke testing
    std::string tool;          ///< argv[0] basename

    /**
     * Parses the shared harness flags, installs telemetry (--log-level,
     * --log-json, --trace-out, --metrics-out, --report-out), and exits
     * with status 2 on any flag nobody understands. Benches with extra
     * private flags list them in extra_known so they are not rejected
     * here.
     *
     * Every bench gets a process-wide obs::Report: --report-out FILE
     * names the output explicitly, otherwise it defaults to
     * BENCH_<name>.json (the bench name without its "bench_" prefix) in
     * the working directory, accumulating the repo's bench trajectory.
     * The shared harness options land in the report's run metadata.
     */
    static BenchOptions
    parse(int argc, char** argv,
          std::initializer_list<const char*> extra_known = {})
    {
        const util::Args args(argc, argv);
        BenchOptions options;
        options.tool = obs::toolNameFromArgv0(
            argc > 0 ? argv[0] : nullptr, "bench");
        options.scale = args.getDouble("scale", options.scale);
        options.seed = static_cast<std::uint64_t>(
            args.getInt("seed", static_cast<std::int64_t>(options.seed)));
        options.timeLimit = args.getDouble("time-limit", options.timeLimit);
        options.runs = static_cast<std::size_t>(
            args.getInt("runs", static_cast<std::int64_t>(options.runs)));
        options.maxGraphs = static_cast<std::size_t>(args.getInt(
            "max-graphs", static_cast<std::int64_t>(options.maxGraphs)));
        options.repeat = static_cast<std::size_t>(std::max<std::int64_t>(
            1,
            args.getInt("repeat",
                        static_cast<std::int64_t>(options.repeat))));
        options.warmup = static_cast<std::size_t>(std::max<std::int64_t>(
            0,
            args.getInt("warmup",
                        static_cast<std::int64_t>(options.warmup))));
        options.quick = args.getBool("quick", false);
        if (options.quick) {
            options.scale *= 0.4;
            options.timeLimit = std::min(options.timeLimit, 2.0);
            options.runs = 1;
            options.maxGraphs = std::min<std::size_t>(options.maxGraphs, 2);
        }
        obs::installCliTelemetry(args, options.tool.c_str());
        if (obs::Report::current() == nullptr) {
            std::string name = options.tool;
            if (name.rfind("bench_", 0) == 0)
                name = name.substr(6);
            obs::Report::install(options.tool, "BENCH_" + name + ".json");
            obs::installTelemetryExitHooks();
        }
        obs::Report& report = *obs::Report::current();
        report.setRun("scale", options.scale);
        report.setRun("seed", options.seed);
        report.setRun("timeLimit", options.timeLimit);
        report.setRun("runs", options.runs);
        report.setRun("repeat", options.repeat);
        report.setRun("warmup", options.warmup);
        report.setRun("quick", options.quick);
        for (const char* name : extra_known)
            args.acknowledge(name);
        if (obs::reportUnknownFlags(args, argv[0] ? argv[0] : "bench") > 0)
            std::exit(2);
        return options;
    }

    /** Applies the per-family graph cap. */
    template <typename T>
    std::vector<T>
    capGraphs(std::vector<T> graphs) const
    {
        if (maxGraphs > 0 && graphs.size() > maxGraphs)
            graphs.resize(maxGraphs);
        return graphs;
    }
};

/** Summary of a warmup+repeat measurement (seconds per repeat). */
struct RepeatStats
{
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::size_t repeats = 0;

    /** "12.3ms ±0.4" style cell for the printed tables. */
    std::string
    cell() const
    {
        return util::formatSeconds(mean) + "s ±" +
               util::formatSeconds(stddev);
    }
};

/**
 * Runs `fn` untimed `warmup` times, then timed `repeats` times, and
 * returns mean/stddev/min/max of the per-run wall time. When a process
 * report is installed and `name` is non-empty, each timed sample is
 * recorded into measurement `name` (unit "s", lower-is-better); the
 * mean/stddev land in the report automatically.
 */
template <typename Fn>
RepeatStats
repeatMeasure(const std::string& name, std::size_t warmup,
              std::size_t repeats, Fn&& fn)
{
    for (std::size_t i = 0; i < warmup; ++i)
        fn();
    obs::Measurement* measurement = nullptr;
    if (obs::Report* report = obs::Report::current();
        report != nullptr && !name.empty())
        measurement = &report->measurement(name).unit("s");
    RepeatStats stats;
    std::vector<double> samples;
    samples.reserve(repeats);
    for (std::size_t i = 0; i < repeats; ++i) {
        util::Timer timer;
        fn();
        const double seconds = timer.seconds();
        samples.push_back(seconds);
        if (measurement != nullptr)
            measurement->add(seconds);
    }
    stats.repeats = samples.size();
    if (samples.empty())
        return stats;
    double sum = 0.0;
    stats.min = samples.front();
    stats.max = samples.front();
    for (double s : samples) {
        sum += s;
        stats.min = std::min(stats.min, s);
        stats.max = std::max(stats.max, s);
    }
    stats.mean = sum / static_cast<double>(samples.size());
    double sq = 0.0;
    for (double s : samples)
        sq += (s - stats.mean) * (s - stats.mean);
    stats.stddev = std::sqrt(sq / static_cast<double>(samples.size()));
    return stats;
}

/** Overload using the harness --warmup/--repeat options. */
template <typename Fn>
RepeatStats
repeatMeasure(const std::string& name, const BenchOptions& options,
              Fn&& fn)
{
    return repeatMeasure(name, options.warmup, options.repeat,
                         static_cast<Fn&&>(fn));
}

/**
 * Records a scalar into the process report when one is installed (the
 * bench binaries always have one); a no-op otherwise. Returns the
 * measurement for chained configuration, or nullptr.
 */
inline obs::Measurement*
reportScalar(const std::string& name, double value,
             const std::string& unit = "")
{
    obs::Report* report = obs::Report::current();
    if (report == nullptr)
        return nullptr;
    obs::Measurement& measurement = report->measurement(name);
    if (!unit.empty())
        measurement.unit(unit);
    measurement.add(value);
    return &measurement;
}

/** Returns the named measurement of the process report (created on
 *  first use), or nullptr when no report is installed. */
inline obs::Measurement*
findMeasurement(const std::string& name)
{
    obs::Report* report = obs::Report::current();
    return report == nullptr ? nullptr : &report->measurement(name);
}

/** Geometric mean of positive values (0 when empty). */
inline double
geometricMean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(std::max(v, 1e-12));
    return std::exp(logSum / static_cast<double>(values.size()));
}

/** Normalized cost increase vs an oracle: (cost - oracle) / oracle. */
inline double
normalizedIncrease(double cost, double oracle)
{
    if (oracle <= 0.0)
        return 0.0;
    return (cost - oracle) / oracle;
}

/** Formats "worst / avg." cells like the paper's tables. */
inline std::string
worstAvgCell(double worst, double avg, std::size_t fails)
{
    std::string cell = util::formatPercent(std::max(0.0, worst)) + " / " +
                       util::formatPercent(std::max(0.0, avg));
    if (fails > 0)
        cell = "Failed(" + std::to_string(fails) + ") / " +
               util::formatPercent(std::max(0.0, avg));
    return cell;
}

} // namespace smoothe::bench

#endif // SMOOTHE_BENCH_COMMON_HPP
