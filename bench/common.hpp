/**
 * @file
 * Shared helpers for the benchmark harness binaries (one per paper table
 * or figure). Each binary accepts --scale, --seed, --time-limit and
 * prints paper-style rows; see DESIGN.md's per-experiment index.
 */

#ifndef SMOOTHE_BENCH_COMMON_HPP
#define SMOOTHE_BENCH_COMMON_HPP

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <vector>

#include "datasets/registry.hpp"
#include "extraction/extractor.hpp"
#include "obs/cli.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace smoothe::bench {

/** Common CLI knobs for all harness binaries. */
struct BenchOptions
{
    double scale = 0.1;        ///< dataset size multiplier
    std::uint64_t seed = 2025; ///< base RNG seed
    double timeLimit = 5.0;    ///< per-extraction budget (seconds)
    std::size_t runs = 3;      ///< repeated stochastic runs (max-diff)
    std::size_t maxGraphs = 4; ///< per-family cap for sweep benches
    bool quick = false;        ///< shrink everything for smoke testing

    /**
     * Parses the shared harness flags, installs telemetry (--log-level,
     * --log-json, --trace-out, --metrics-out), and exits with status 2 on
     * any flag nobody understands. Benches with extra private flags list
     * them in extra_known so they are not rejected here.
     */
    static BenchOptions
    parse(int argc, char** argv,
          std::initializer_list<const char*> extra_known = {})
    {
        const util::Args args(argc, argv);
        BenchOptions options;
        options.scale = args.getDouble("scale", options.scale);
        options.seed = static_cast<std::uint64_t>(
            args.getInt("seed", static_cast<std::int64_t>(options.seed)));
        options.timeLimit = args.getDouble("time-limit", options.timeLimit);
        options.runs = static_cast<std::size_t>(
            args.getInt("runs", static_cast<std::int64_t>(options.runs)));
        options.maxGraphs = static_cast<std::size_t>(args.getInt(
            "max-graphs", static_cast<std::int64_t>(options.maxGraphs)));
        options.quick = args.getBool("quick", false);
        if (options.quick) {
            options.scale *= 0.4;
            options.timeLimit = std::min(options.timeLimit, 2.0);
            options.runs = 1;
            options.maxGraphs = std::min<std::size_t>(options.maxGraphs, 2);
        }
        obs::installCliTelemetry(args);
        for (const char* name : extra_known)
            args.acknowledge(name);
        if (obs::reportUnknownFlags(args, argv[0] ? argv[0] : "bench") > 0)
            std::exit(2);
        return options;
    }

    /** Applies the per-family graph cap. */
    template <typename T>
    std::vector<T>
    capGraphs(std::vector<T> graphs) const
    {
        if (maxGraphs > 0 && graphs.size() > maxGraphs)
            graphs.resize(maxGraphs);
        return graphs;
    }
};

/** Geometric mean of positive values (0 when empty). */
inline double
geometricMean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(std::max(v, 1e-12));
    return std::exp(logSum / static_cast<double>(values.size()));
}

/** Normalized cost increase vs an oracle: (cost - oracle) / oracle. */
inline double
normalizedIncrease(double cost, double oracle)
{
    if (oracle <= 0.0)
        return 0.0;
    return (cost - oracle) / oracle;
}

/** Formats "worst / avg." cells like the paper's tables. */
inline std::string
worstAvgCell(double worst, double avg, std::size_t fails)
{
    std::string cell = util::formatPercent(std::max(0.0, worst)) + " / " +
                       util::formatPercent(std::max(0.0, avg));
    if (fails > 0)
        cell = "Failed(" + std::to_string(fails) + ") / " +
               util::formatPercent(std::max(0.0, avg));
    return cell;
}

} // namespace smoothe::bench

#endif // SMOOTHE_BENCH_COMMON_HPP
