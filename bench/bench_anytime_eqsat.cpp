/**
 * @file
 * Anytime equality saturation: the incremental-extraction benchmark.
 *
 * Drives a live saturation loop on eqsat-grown workloads (caviar with
 * phased TRS scheduling, rover-style datapath, arithmetic): each epoch
 * runs one saturation iteration, exports the grown e-graph with its
 * GraphDelta (MutEGraph::exportIncremental), and re-extracts twice —
 * once through the incremental protocol (warm-started SmoothE with
 * Program patching) and once from scratch. Reports per-epoch quality
 * and wall time for both tracks, the median per-epoch speedup, and the
 * final-cost parity ratio.
 *
 * Every epoch also runs the delta-replay cross-check: the structural
 * delta drained from the mutable e-graph is replayed onto the pre-epoch
 * snapshot, which must then be structurally equal to the full rebuild.
 *
 * Gated in CI against bench/baselines/anytime_eqsat.json:
 *   incremental.speedup_vs_scratch >= 2   (budget entry, mean IS floor)
 *   incremental.cost_ratio <= 1.01        (final quality within 1%)
 *   delta.crosscheck_failures == 0
 *
 * Run: ./build/bench/bench_anytime_eqsat [--scale 0.1] [--epochs 6]
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "obs/metrics.hpp"
#include "datasets/eqsat_grown.hpp"
#include "eqsat/mut_egraph.hpp"
#include "eqsat/rules.hpp"
#include "smoothe/smoothe.hpp"

using namespace smoothe;

namespace {

/** Per-op cost in the eqsat-grown term languages (mirrors the dataset
 *  generators: leaves free, shifts/min/max cheap, multiplies dear). */
double
costOf(const std::string& op)
{
    if (op == "zero" || op == "one" || op == "two" || op == "three" ||
        op == "five" || op.rfind("v", 0) == 0)
        return 0.0;
    if (op == "+" || op == "-")
        return 4.0;
    if (op == "<<" || op == "neg")
        return 1.0;
    if (op == "min" || op == "max")
        return 2.0;
    if (op == "*" || op == "square")
        return 16.0;
    if (op == "mac")
        return 17.0;
    return 8.0;
}

/** One saturation workload: a seed term plus an epoch -> rules map. */
struct Workload
{
    std::string name;
    eqsat::TermPtr term;
    /** Rules driven in epoch `e` (caviar cycles its TRS phases). */
    const std::vector<eqsat::Rewrite>& (*rulesFor)(std::size_t e);
};

const std::vector<eqsat::Rewrite>&
caviarPhaseFor(std::size_t epoch)
{
    const auto& phases = eqsat::caviarRulePhases();
    return phases[epoch % phases.size()];
}

const std::vector<eqsat::Rewrite>&
datapathFor(std::size_t)
{
    return eqsat::datapathRules();
}

const std::vector<eqsat::Rewrite>&
arithmeticFor(std::size_t)
{
    return eqsat::arithmeticRules();
}

/** Rover-style FIR seed: sum of coefficient taps. */
eqsat::TermPtr
firTerm(std::size_t taps)
{
    const char* coefficients[] = {"two", "three", "five", "one"};
    eqsat::TermPtr acc;
    for (std::size_t k = 0; k < taps; ++k) {
        std::string var = "v";
        var += std::to_string(k);
        eqsat::TermPtr tap = eqsat::app(
            "*",
            {eqsat::leaf(coefficients[k % 4]), eqsat::leaf(std::move(var))});
        acc = acc ? eqsat::app("+", {acc, tap}) : tap;
    }
    return acc;
}

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t mid = values.size() / 2;
    if (values.size() % 2 == 1)
        return values[mid];
    return 0.5 * (values[mid - 1] + values[mid]);
}

} // namespace

int
main(int argc, char** argv)
{
    const bench::BenchOptions options =
        bench::BenchOptions::parse(argc, argv, {"epochs"});
    const util::Args args(argc, argv);
    const std::size_t epochs = static_cast<std::size_t>(
        std::max<std::int64_t>(2, args.getInt("epochs", 6)));
    // Final node budget per workload; epochs ramp up to it so every
    // epoch actually grows the graph.
    const std::size_t finalBudget = std::max<std::size_t>(
        250, static_cast<std::size_t>(5000 * options.scale));

    std::printf("=== Anytime eqsat: incremental vs from-scratch "
                "extraction ===\n");
    std::printf("scale %.2f, %zu epochs, node budget %zu\n\n",
                options.scale, epochs, finalBudget);

    util::Rng termRng(options.seed);
    // Seed terms are sums of random subtrees so single-rule collapses
    // (x - x -> 0, min(x, x) -> x) cannot reduce a workload to a leaf.
    const auto caviarSeed = [&termRng](std::size_t depth) {
        using datasets::TermFlavor;
        return eqsat::app(
            "max",
            {eqsat::app("+",
                        {datasets::randomTerm(TermFlavor::Caviar, depth,
                                              4, termRng),
                         datasets::randomTerm(TermFlavor::Caviar, depth,
                                              4, termRng)}),
             datasets::randomTerm(TermFlavor::Caviar, depth, 4, termRng)});
    };
    std::vector<Workload> workloads;
    workloads.push_back({"caviar_a", caviarSeed(4), &caviarPhaseFor});
    workloads.push_back({"caviar_b", caviarSeed(5), &caviarPhaseFor});
    workloads.push_back({"fir_6", firTerm(6), &datapathFor});
    if (!options.quick) {
        workloads.push_back(
            {"arith",
             datasets::randomTerm(datasets::TermFlavor::Arithmetic, 5, 4,
                                  termRng),
             &arithmeticFor});
    }

    // Low patience + a high iteration ceiling separates the tracks: the
    // warm start resumes at the previous optimum and exhausts patience
    // almost immediately, while a cold start keeps improving (each
    // improvement resets patience) until it has re-paid the full
    // convergence the incremental track carried over.
    core::SmoothEConfig config;
    config.numSeeds = 8;
    config.maxIterations = 400;
    config.patience = 18;
    config.learningRate = 0.1f;

    extract::ExtractOptions extractOptions;
    extractOptions.timeLimitSeconds = options.timeLimit;
    extractOptions.seed = options.seed;

    util::TablePrinter table({"Workload", "Epoch", "N", "M", "inc cost",
                              "scratch cost", "inc time", "scratch time",
                              "speedup"});

    std::vector<double> speedups;   ///< warm epochs, all workloads
    std::vector<double> costRatios; ///< final epoch, per workload
    std::size_t crosscheckFailures = 0;

    for (const Workload& workload : workloads) {
        eqsat::MutEGraph mut;
        const eqsat::Id root = mut.addTerm(*workload.term);
        mut.enableDeltaLog(true);

        eqsat::ExportState exportState;
        extract::IncrementalState incrementalState;
        core::SmoothEExtractor incremental(config);
        core::SmoothEExtractor scratch(config);

        obs::Series* series = nullptr;
        if (obs::Report* report = obs::Report::current()) {
            series = &report->series(
                "anytime." + workload.name,
                {"epoch", "nodes", "classes", "incCost", "scratchCost",
                 "incSeconds", "scratchSeconds"});
        }

        // Anytime incumbents: a saturation loop keeps the best
        // extraction seen so far (every epoch's selection implements
        // the same root term), so quality is compared on the running
        // minimum, not on any single epoch's draw.
        double incIncumbent = 0.0;
        double scratchIncumbent = 0.0;
        for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
            // One saturation epoch against the ramping node budget,
            // with the pre-epoch snapshot kept for the replay check.
            // Front-loaded budget: epoch 0 grows to half the cap,
            // epoch 1 to the full cap, and later epochs saturate under
            // it — matches still merge classes but adds are rejected,
            // so late deltas shrink. Those small-delta epochs are
            // exactly where incremental extraction earns its keep.
            eqsat::MutEGraph snapshot = mut;
            eqsat::RunLimits limits;
            limits.maxIterations = 8;
            limits.maxNodes =
                epoch == 0 ? finalBudget / 2 : finalBudget;
            limits.maxMatchesPerRule = 1000;
            mut.run(workload.rulesFor(epoch), limits);

            // Delta-replay cross-check: drained delta onto the
            // snapshot must reproduce the full rebuild.
            const eqsat::Delta delta = mut.drainDelta();
            snapshot.applyDelta(delta);
            if (const auto diff = snapshot.structurallyEquals(mut)) {
                ++crosscheckFailures;
                std::fprintf(stderr,
                             "delta replay diverged (%s epoch %zu): %s\n",
                             workload.name.c_str(), epoch, diff->c_str());
            }

            auto exported = mut.exportIncremental(
                mut.find(root),
                [](const std::string& op, std::size_t) {
                    return costOf(op);
                },
                exportState);

            util::Timer incTimer;
            const auto incResult = incremental.extractIncremental(
                exported.graph, exported.delta, incrementalState,
                extractOptions);
            const double incSeconds = incTimer.seconds();

            util::Timer scratchTimer;
            const auto scratchResult =
                scratch.extract(exported.graph, extractOptions);
            const double scratchSeconds = scratchTimer.seconds();

            const double speedup =
                incSeconds > 0.0 ? scratchSeconds / incSeconds : 0.0;
            if (epoch > 0)
                speedups.push_back(speedup);
            if (epoch == 0) {
                incIncumbent = incResult.cost;
                scratchIncumbent = scratchResult.cost;
            } else {
                incIncumbent = std::min(incIncumbent, incResult.cost);
                scratchIncumbent =
                    std::min(scratchIncumbent, scratchResult.cost);
            }

            if (series != nullptr) {
                series->addRow({static_cast<double>(epoch),
                                static_cast<double>(
                                    exported.graph.numNodes()),
                                static_cast<double>(
                                    exported.graph.numClasses()),
                                incResult.cost, scratchResult.cost,
                                incSeconds, scratchSeconds});
            }
            char incTime[32], scratchTime[32], speedupCell[32];
            std::snprintf(incTime, sizeof(incTime), "%.1fms",
                          incSeconds * 1e3);
            std::snprintf(scratchTime, sizeof(scratchTime), "%.1fms",
                          scratchSeconds * 1e3);
            std::snprintf(speedupCell, sizeof(speedupCell), "%.2fx%s",
                          speedup, epoch == 0 ? " (cold)" : "");
            table.addRow(
                {workload.name, std::to_string(epoch),
                 std::to_string(exported.graph.numNodes()),
                 std::to_string(exported.graph.numClasses()),
                 std::to_string(incResult.cost),
                 std::to_string(scratchResult.cost), incTime,
                 scratchTime, speedupCell});
        }
        if (scratchIncumbent > 0.0)
            costRatios.push_back(incIncumbent / scratchIncumbent);
    }

    table.print(std::cout);

    const double medianSpeedup = median(speedups);
    const double worstRatio =
        costRatios.empty()
            ? 1.0
            : *std::max_element(costRatios.begin(), costRatios.end());
    std::printf("\nmedian warm-epoch speedup: %.2fx (gate: >= 2)\n",
                medianSpeedup);
    std::printf("worst final cost ratio (inc/scratch): %.4f "
                "(gate: <= 1.01)\n",
                worstRatio);
    std::printf("delta replay cross-check failures: %zu\n",
                crosscheckFailures);
    std::printf("program.patch %llu, program.rerecord %llu, "
                "smoothe.warm_starts %llu\n",
                static_cast<unsigned long long>(
                    obs::counter("program.patch").get()),
                static_cast<unsigned long long>(
                    obs::counter("program.rerecord").get()),
                static_cast<unsigned long long>(
                    obs::counter("smoothe.warm_starts").get()));

    bench::reportScalar("incremental.speedup_vs_scratch", medianSpeedup,
                        "x")
        ->higherIsBetter()
        .tolerancePct(0.001);
    bench::reportScalar("incremental.cost_ratio", worstRatio)
        ->tolerancePct(1.0);
    bench::reportScalar("delta.crosscheck_failures",
                        static_cast<double>(crosscheckFailures))
        ->tolerancePct(0.001);
    bench::reportScalar("incremental.program_patches",
                        static_cast<double>(
                            obs::counter("program.patch").get()))
        ->checked(false);
    bench::reportScalar("incremental.program_rerecords",
                        static_cast<double>(
                            obs::counter("program.rerecord").get()))
        ->checked(false);
    bench::reportScalar(
        "incremental.runs",
        static_cast<double>(
            obs::counter("extraction.SmoothE.incremental_runs").get()))
        ->checked(false);

    return crosscheckFailures == 0 ? 0 : 1;
}
