/**
 * @file
 * Regenerates Table 4: the adversarial NP-hard datasets (set covering and
 * MaxSAT reductions). Expected shape: all ILP presets reach the optimum
 * quickly (these e-graphs carry little graphical structure), tree-cost
 * heuristics blow up by integer factors (CSE-rich inputs), and SmoothE
 * sits between the two.
 *
 * Run: ./build/bench/bench_table4_adversarial [--scale 0.1]
 */

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "extraction/bottom_up.hpp"
#include "ilp/ilp_extractor.hpp"
#include "smoothe/smoothe.hpp"

using namespace smoothe;

namespace {

struct MethodStats
{
    std::vector<double> increases;
    double timeSum = 0.0;
    std::size_t count = 0;
    std::size_t fails = 0;

    void
    record(const extract::ExtractionResult& result, double oracle)
    {
        timeSum += result.seconds;
        ++count;
        if (!result.ok()) {
            ++fails;
            return;
        }
        increases.push_back(
            std::max(0.0, bench::normalizedIncrease(result.cost, oracle)));
    }

    std::string
    cell() const
    {
        std::string top =
            util::formatSeconds(count ? timeSum / count : 0.0);
        if (fails)
            top += " (" + std::to_string(fails) + ")";
        double worst = 0.0;
        std::vector<double> shifted;
        for (double inc : increases) {
            worst = std::max(worst, inc);
            shifted.push_back(1.0 + inc);
        }
        const double avg = shifted.empty()
                               ? 0.0
                               : bench::geometricMean(shifted) - 1.0;
        return top + " | " + util::formatPercent(worst) + " / " +
               util::formatPercent(avg);
    }
};

} // namespace

int
main(int argc, char** argv)
{
    const bench::BenchOptions options =
        bench::BenchOptions::parse(argc, argv);
    std::printf("=== Table 4: adversarial datasets (synthetic cost) ===\n");
    std::printf("scale %.2f, time limit %.1fs\n\n", options.scale,
                options.timeLimit);

    util::TablePrinter table({"Dataset", "ILP-strong", "ILP-medium",
                              "ILP-weak", "Heuristic (egg)", "Heuristic+",
                              "SmoothE (ours)"});

    for (const std::string family : {"set", "maxsat"}) {
        const auto graphs = options.capGraphs(
            datasets::loadFamily(family, options.scale, options.seed));

        std::vector<double> oracle(graphs.size());
        for (std::size_t g = 0; g < graphs.size(); ++g) {
            ilp::IlpExtractor solver(ilp::IlpPreset::Strong);
            extract::ExtractOptions oracleOptions;
            oracleOptions.timeLimitSeconds = 2.0 * options.timeLimit;
            const auto result =
                solver.extract(graphs[g].graph, oracleOptions);
            oracle[g] = result.ok() ? result.cost : 1.0;
        }

        MethodStats strongStats;
        MethodStats mediumStats;
        MethodStats weakStats;
        MethodStats heuristicStats;
        MethodStats heuristicPlusStats;
        MethodStats smootheStats;

        for (std::size_t g = 0; g < graphs.size(); ++g) {
            const eg::EGraph& graph = graphs[g].graph;
            extract::ExtractOptions timed;
            timed.timeLimitSeconds = options.timeLimit;

            ilp::IlpExtractor strong(ilp::IlpPreset::Strong);
            strongStats.record(strong.extract(graph, timed), oracle[g]);
            ilp::IlpExtractor medium(ilp::IlpPreset::Medium);
            mediumStats.record(medium.extract(graph, timed), oracle[g]);
            ilp::IlpExtractor weak(ilp::IlpPreset::Weak);
            weakStats.record(weak.extract(graph, timed), oracle[g]);

            extract::BottomUpExtractor heuristic;
            heuristicStats.record(heuristic.extract(graph, {}), oracle[g]);
            extract::FasterBottomUpExtractor heuristicPlus;
            heuristicPlusStats.record(heuristicPlus.extract(graph, {}),
                                      oracle[g]);

            for (std::size_t run = 0; run < options.runs; ++run) {
                core::SmoothEConfig config;
                config.numSeeds = 64;
                config.maxIterations = 300;
                config.patience = 80;
                core::SmoothEExtractor smoothe(config);
                extract::ExtractOptions smootheOptions;
                smootheOptions.seed = options.seed + run * 7 + g;
                smootheOptions.timeLimitSeconds = options.timeLimit;
                smootheStats.record(smoothe.extract(graph, smootheOptions),
                                    oracle[g]);
            }
        }

        table.addRow({family, strongStats.cell(), mediumStats.cell(),
                      weakStats.cell(), heuristicStats.cell(),
                      heuristicPlusStats.cell(), smootheStats.cell()});
    }
    table.print(std::cout);
    std::printf("\ncell format: mean time s (#fails) | worst / geo-avg "
                "normalized cost increase vs oracle\n");
    return 0;
}
