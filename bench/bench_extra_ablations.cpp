/**
 * @file
 * Ablations of SmoothE's design choices beyond the paper's Figure 6
 * (called out in DESIGN.md): NOTEARS lambda, propagation-iteration count,
 * parent-correlation assumption, propagation damping, lambda warmup, and
 * sampling temperature — each swept on one cyclic tensat-style e-graph
 * and one rover-style e-graph with everything else fixed.
 *
 * Run: ./build/bench/bench_extra_ablations [--scale 0.1]
 */

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "smoothe/smoothe.hpp"

using namespace smoothe;

namespace {

struct RunOutcome
{
    double cost = 0.0;
    double seconds = 0.0;
    bool ok = false;
    bool acyclicFailures = false;
};

RunOutcome
run(const eg::EGraph& graph, const core::SmoothEConfig& config,
    const bench::BenchOptions& options)
{
    core::SmoothEExtractor extractor(config);
    extract::ExtractOptions runOptions;
    runOptions.seed = options.seed;
    runOptions.timeLimitSeconds = options.timeLimit;
    const auto result = extractor.extract(graph, runOptions);
    RunOutcome outcome;
    outcome.ok = result.ok();
    outcome.cost = result.cost;
    outcome.seconds = result.seconds;
    return outcome;
}

std::string
cell(const RunOutcome& outcome)
{
    if (!outcome.ok)
        return "Fails";
    return util::formatFixed(outcome.cost, 1) + " / " +
           util::formatSeconds(outcome.seconds);
}

} // namespace

int
main(int argc, char** argv)
{
    const bench::BenchOptions options =
        bench::BenchOptions::parse(argc, argv);
    std::printf("=== Extra ablations: SmoothE design choices ===\n");
    std::printf("scale %.2f; cells are cost / seconds\n", options.scale);

    datasets::FamilyParams tensatLike = datasets::tensatParams();
    tensatLike.numClasses = static_cast<std::size_t>(
        tensatLike.numClasses * options.scale);
    tensatLike.cycleFraction = 0.04; // ensure NOTEARS has work to do
    const eg::EGraph cyclic =
        datasets::generateStructured(tensatLike, options.seed);

    datasets::FamilyParams roverLike = datasets::roverParams();
    roverLike.numClasses = static_cast<std::size_t>(
        roverLike.numClasses * options.scale);
    const eg::EGraph datapath =
        datasets::generateStructured(roverLike, options.seed + 1);

    core::SmoothEConfig base;
    base.numSeeds = 32;
    base.maxIterations = 200;
    base.patience = 80;

    const struct
    {
        const char* name;
        const eg::EGraph* graph;
    } graphs[] = {{"tensat-like (cyclic)", &cyclic},
                  {"rover-like", &datapath}};

    for (const auto& g : graphs) {
        std::printf("\n--- %s (N=%zu, M=%zu) ---\n", g.name,
                    g.graph->numNodes(), g.graph->numClasses());

        {
            util::TablePrinter table({"lambda", "result"});
            for (const float lambda : {0.0f, 1.0f, 8.0f, 64.0f}) {
                core::SmoothEConfig config = base;
                config.lambda = lambda;
                table.addRow({util::formatFixed(lambda, 1),
                              cell(run(*g.graph, config, options))});
            }
            std::printf("NOTEARS lambda sweep:\n");
            table.print(std::cout);
        }
        {
            util::TablePrinter table({"prop iters", "result"});
            for (const std::size_t iters : {2u, 4u, 8u, 16u, 32u}) {
                core::SmoothEConfig config = base;
                config.propagationIterations = iters;
                table.addRow({std::to_string(iters),
                              cell(run(*g.graph, config, options))});
            }
            std::printf("propagation iteration sweep (0=auto depth):\n");
            table.print(std::cout);
        }
        {
            util::TablePrinter table({"assumption", "result"});
            for (const auto assumption :
                 {core::Assumption::Independent,
                  core::Assumption::Correlated,
                  core::Assumption::Hybrid}) {
                core::SmoothEConfig config = base;
                config.assumption = assumption;
                table.addRow({core::toString(assumption),
                              cell(run(*g.graph, config, options))});
            }
            std::printf("assumption sweep:\n");
            table.print(std::cout);
        }
        {
            util::TablePrinter table({"damping", "result"});
            for (const float damping : {0.0f, 0.2f, 0.5f}) {
                core::SmoothEConfig config = base;
                config.damping = damping;
                table.addRow({util::formatFixed(damping, 1),
                              cell(run(*g.graph, config, options))});
            }
            std::printf("propagation damping sweep (extension):\n");
            table.print(std::cout);
        }
        {
            util::TablePrinter table({"temperature", "result"});
            for (const float temperature : {0.0f, 0.25f, 1.0f}) {
                core::SmoothEConfig config = base;
                config.sampleTemperature = temperature;
                table.addRow({util::formatFixed(temperature, 2),
                              cell(run(*g.graph, config, options))});
            }
            std::printf("sampling temperature sweep (extension, 0 = "
                        "paper's arg-max):\n");
            table.print(std::cout);
        }
        {
            util::TablePrinter table({"lambda warmup", "result"});
            for (const std::size_t warmup : {0u, 50u, 150u}) {
                core::SmoothEConfig config = base;
                config.lambdaWarmupIterations = warmup;
                table.addRow({std::to_string(warmup),
                              cell(run(*g.graph, config, options))});
            }
            std::printf("lambda warmup sweep (extension):\n");
            table.print(std::cout);
        }
    }
    return 0;
}
